#include "dassa/io/dash5.hpp"

#include <cstring>
#include <limits>
#include <set>
#include <utility>

#include <atomic>

#include "dassa/common/counters.hpp"
#include "dassa/common/thread_pool.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/io/chunk_cache.hpp"
#include "dash5_detail.hpp"
#include "serialize.hpp"

namespace dassa::io {

namespace {

/// Process-global readahead gate (see Dash5File::set_readahead). Tests
/// flip it off to make io.cache.* counts exactly reproducible.
std::atomic<bool> g_readahead{true};

// Framing constants live in dash5_detail.hpp (shared with the parallel
// repack engine); local aliases keep the historical names readable.
constexpr auto& kMagic = detail::kMagicV2;
using detail::kFooterTail;
using detail::kIndexEntrySize;
using detail::kIndexMagic;
using detail::kMagicV3;
using detail::kPreludeSize;

/// True iff a * b overflows uint64. Extent fields come straight from
/// the (attacker-controllable) file, so every size computation derived
/// from them must be checked before it feeds an allocation or offset.
bool mul_overflows(std::uint64_t a, std::uint64_t b) {
  return b != 0 && a > std::numeric_limits<std::uint64_t>::max() / b;
}

void encode_kv(detail::Encoder& enc, const KvList& kv) {
  enc.u32(static_cast<std::uint32_t>(kv.size()));
  for (const auto& [k, v] : kv.items()) {
    enc.str(k);
    enc.str(v);
  }
}

KvList decode_kv(detail::Decoder& dec) {
  KvList kv;
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k = dec.str();
    std::string v = dec.str();
    kv.set(std::move(k), std::move(v));
  }
  return kv;
}

std::vector<std::byte> encode_header(const Dash5Header& h) {
  detail::Encoder enc;
  encode_kv(enc, h.global);
  enc.u64(h.objects.size());
  for (const auto& obj : h.objects) {
    enc.str(obj.path);
    encode_kv(enc, obj.kv);
  }
  enc.u8(static_cast<std::uint8_t>(h.dtype));
  enc.u64(h.shape.rows);
  enc.u64(h.shape.cols);
  enc.u8(static_cast<std::uint8_t>(h.layout));
  enc.u64(h.chunk.rows);
  enc.u64(h.chunk.cols);
  if (!h.codec.empty()) {
    // v3 extension: the per-chunk codec chain. v2 headers stop at the
    // chunk extents, so old readers never see these bytes.
    enc.u8(static_cast<std::uint8_t>(h.codec.chain.size()));
    for (const CodecId id : h.codec.chain) {
      enc.u8(static_cast<std::uint8_t>(id));
    }
  }
  std::vector<std::byte> out = enc.bytes();
  const std::uint32_t crc = detail::crc32(out.data(), out.size());
  detail::Encoder tail;
  tail.u32(crc);
  out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
  return out;
}

Dash5Header decode_header(const std::vector<std::byte>& raw,
                          const std::string& path,
                          std::uint8_t version) {
  if (raw.size() < 4) throw FormatError("header too small in " + path);
  const std::size_t body = raw.size() - 4;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, raw.data() + body, 4);
  if (detail::crc32(raw.data(), body) != stored_crc) {
    throw FormatError("header CRC mismatch in " + path);
  }
  detail::Decoder dec(raw);
  Dash5Header h;
  h.global = decode_kv(dec);
  const std::uint64_t nobj = dec.u64();
  // Each object needs >= 8 encoded bytes (path length + kv count), so
  // a count beyond body/8 cannot be satisfied -- reject it before the
  // reserve turns a 4-byte corruption into a std::bad_alloc.
  if (nobj > raw.size() / 8) {
    throw FormatError("implausible object count in " + path);
  }
  h.objects.reserve(nobj);
  for (std::uint64_t i = 0; i < nobj; ++i) {
    ObjectMeta obj;
    obj.path = dec.str();
    obj.kv = decode_kv(dec);
    h.objects.push_back(std::move(obj));
  }
  const std::uint8_t dtype = dec.u8();
  if (dtype > static_cast<std::uint8_t>(DType::kF32)) {
    throw FormatError("unknown dtype in " + path);
  }
  h.dtype = static_cast<DType>(dtype);
  h.shape.rows = dec.u64();
  h.shape.cols = dec.u64();
  const std::uint8_t layout = dec.u8();
  if (layout > static_cast<std::uint8_t>(Layout::kChunked)) {
    throw FormatError("unknown layout in " + path);
  }
  h.layout = static_cast<Layout>(layout);
  h.chunk.rows = dec.u64();
  h.chunk.cols = dec.u64();
  if (version >= 3) {
    const std::uint8_t nstages = dec.u8();
    if (nstages == 0 || nstages > CodecSpec::kMaxChain) {
      throw FormatError("implausible codec chain length in " + path);
    }
    h.codec.chain.reserve(nstages);
    for (std::uint8_t i = 0; i < nstages; ++i) {
      const std::uint8_t id = dec.u8();
      if (CodecRegistry::instance().find(static_cast<CodecId>(id)) ==
          nullptr) {
        throw FormatError("unknown codec id " + std::to_string(id) + " in " +
                          path);
      }
      h.codec.chain.push_back(static_cast<CodecId>(id));
    }
  }
  if (h.layout == Layout::kChunked &&
      (h.chunk.rows == 0 || h.chunk.cols == 0)) {
    throw FormatError("chunked layout without chunk extents in " + path);
  }
  if (mul_overflows(h.shape.rows, h.shape.cols)) {
    throw FormatError("dataset extent overflow " + h.shape.str() + " in " +
                      path);
  }
  if (h.layout == Layout::kChunked &&
      mul_overflows(h.chunk.rows, h.chunk.cols)) {
    throw FormatError("chunk extent overflow in " + path);
  }
  if (version >= 3 && h.layout != Layout::kChunked) {
    throw FormatError("v3 requires the chunked layout in " + path);
  }
  return h;
}

}  // namespace

std::size_t dtype_size(DType t) {
  return t == DType::kF64 ? sizeof(double) : sizeof(float);
}

namespace {

/// Number of chunk tiles along each axis.
std::pair<std::size_t, std::size_t> chunk_grid(const Dash5Header& h) {
  return {(h.shape.rows + h.chunk.rows - 1) / h.chunk.rows,
          (h.shape.cols + h.chunk.cols - 1) / h.chunk.cols};
}

void write_elements(OutputFile& out, const Dash5Header& header,
                    std::span<const double> data) {
  if (header.dtype == DType::kF64) {
    out.write(data.data(), data.size_bytes());
  } else {
    std::vector<float> f(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      f[i] = static_cast<float>(data[i]);
    }
    out.write(f.data(), f.size() * sizeof(float));
  }
}

/// Convert a tile to its on-disk element bytes (the codec input).
std::vector<std::byte> elem_bytes(DType dtype, std::span<const double> tile) {
  std::vector<std::byte> raw(tile.size() * dtype_size(dtype));
  if (dtype == DType::kF64) {
    std::memcpy(raw.data(), tile.data(), raw.size());
  } else {
    std::vector<float> f(tile.size());
    for (std::size_t i = 0; i < tile.size(); ++i) {
      f[i] = static_cast<float>(tile[i]);
    }
    std::memcpy(raw.data(), f.data(), raw.size());
  }
  return raw;
}

/// Copy the chunk (gi, gj) out of a row-major array into a dense,
/// zero-padded tile (the v2 and v3 writers share this shape logic).
void fill_tile(const Dash5Header& header, std::span<const double> data,
               std::size_t gi, std::size_t gj, std::vector<double>& tile) {
  std::fill(tile.begin(), tile.end(), 0.0);
  const std::size_t r0 = gi * header.chunk.rows;
  const std::size_t c0 = gj * header.chunk.cols;
  const std::size_t r_cnt = std::min(header.chunk.rows, header.shape.rows - r0);
  const std::size_t c_cnt = std::min(header.chunk.cols, header.shape.cols - c0);
  for (std::size_t r = 0; r < r_cnt; ++r) {
    const double* src = data.data() + header.shape.at(r0 + r, c0);
    std::copy(src, src + c_cnt, tile.data() + r * header.chunk.cols);
  }
}

/// Compressed payload of one chunk: the codec chain's output, or the
/// raw element bytes when compression does not pay (codec flag 0).
/// The raw fallback bounds worst-case file growth at zero: incompres-
/// sible chunks cost exactly their v2 size.
std::pair<std::vector<std::byte>, std::uint8_t> encode_tile(
    const Dash5Header& header, std::span<const double> tile) {
  std::vector<std::byte> raw = elem_bytes(header.dtype, tile);
  std::vector<std::byte> enc =
      encode_chain(header.codec, raw, dtype_size(header.dtype));
  if (enc.size() >= raw.size()) {
    return {std::move(raw), std::uint8_t{0}};
  }
  return {std::move(enc), std::uint8_t{1}};
}

/// Append one encoded chunk: write its bytes, extend the index, and
/// charge the io.codec.* byte counters.
void append_chunk(OutputFile& out, std::vector<ChunkIndexEntry>& index,
                  std::uint64_t& cursor, std::uint64_t raw_size,
                  const std::vector<std::byte>& payload, std::uint8_t codec) {
  ChunkIndexEntry entry;
  entry.offset = cursor;
  entry.csize = payload.size();
  entry.raw_size = raw_size;
  entry.crc = detail::crc32(payload.data(), payload.size());
  entry.codec = codec;
  out.write(payload.data(), payload.size());
  index.push_back(entry);
  cursor += payload.size();
  global_counters().add(counters::kIoCodecBytesRaw, raw_size);
  global_counters().add(counters::kIoCodecBytesStored, payload.size());
  if (codec == 0) {
    global_counters().add(counters::kIoCodecStoredRawChunks, 1);
  }
}

/// Write the v3 footer: index block, its CRC, its size, and the
/// trailing magic that lets the reader find it from the file end.
void write_chunk_index(OutputFile& out,
                       const std::vector<ChunkIndexEntry>& index) {
  const std::vector<std::byte> footer =
      detail::encode_chunk_index_footer(index);
  out.write(footer.data(), footer.size());
}

}  // namespace

namespace detail {

std::vector<std::byte> encode_dash5_header(const Dash5Header& h) {
  return encode_header(h);
}

std::pair<std::vector<std::byte>, std::uint8_t> encode_dash5_tile(
    const Dash5Header& h, std::span<const double> tile) {
  return encode_tile(h, tile);
}

std::vector<std::byte> encode_chunk_index_footer(
    const std::vector<ChunkIndexEntry>& index) {
  Encoder enc;
  for (const ChunkIndexEntry& e : index) {
    enc.u64(e.offset);
    enc.u64(e.csize);
    enc.u64(e.raw_size);
    enc.u32(e.crc);
    enc.u8(e.codec);
  }
  std::vector<std::byte> out = enc.bytes();
  const std::uint32_t crc = crc32(out.data(), out.size());
  const std::uint64_t size = out.size();
  Encoder tail;
  tail.u32(crc);
  tail.u64(size);
  out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
  const auto* magic = reinterpret_cast<const std::byte*>(kIndexMagic);
  out.insert(out.end(), magic, magic + sizeof kIndexMagic);
  return out;
}

}  // namespace detail

void dash5_write(const std::string& path, const Dash5Header& header,
                 std::span<const double> data) {
  DASSA_TRACE_SPAN("io", "io.write");
  DASSA_CHECK(data.size() == header.shape.size(),
              "data size does not match dataset shape");
  if (header.layout == Layout::kChunked) {
    DASSA_CHECK(header.chunk.rows >= 1 && header.chunk.cols >= 1,
                "chunked layout needs positive chunk extents");
  }
  if (!header.codec.empty()) {
    DASSA_CHECK(header.layout == Layout::kChunked,
                "codec chains require the chunked layout");
  }
  const bool v3 = !header.codec.empty();
  const std::vector<std::byte> head = encode_header(header);

  OutputFile out(path);
  out.write(v3 ? kMagicV3 : kMagic, sizeof kMagic);
  const std::uint64_t head_size = head.size();
  out.write(&head_size, sizeof head_size);
  out.write(head.data(), head.size());

  if (header.layout == Layout::kContiguous) {
    write_elements(out, header, data);
  } else if (!v3) {
    // v2 tiling: chunks in grid row-major order, each a dense
    // chunk_rows x chunk_cols block, zero-padded at the edges.
    const auto [grid_rows, grid_cols] = chunk_grid(header);
    std::vector<double> tile(header.chunk.rows * header.chunk.cols);
    for (std::size_t gi = 0; gi < grid_rows; ++gi) {
      for (std::size_t gj = 0; gj < grid_cols; ++gj) {
        fill_tile(header, data, gi, gj, tile);
        write_elements(out, header, tile);
      }
    }
  } else {
    // v3: same tile order, but each tile runs through the codec chain
    // (in parallel on the I/O pool) and lands with a chunk index entry.
    const auto [grid_rows, grid_cols] = chunk_grid(header);
    const std::size_t n_chunks = grid_rows * grid_cols;
    const std::size_t chunk_elems = header.chunk.rows * header.chunk.cols;
    std::vector<std::vector<std::byte>> payloads(n_chunks);
    std::vector<std::uint8_t> flags(n_chunks, 0);
    if (n_chunks > 0) {
      io_pool().parallel_for(
          n_chunks, [&](std::size_t, std::size_t begin, std::size_t end) {
            std::vector<double> tile(chunk_elems);
            for (std::size_t i = begin; i < end; ++i) {
              fill_tile(header, data, i / grid_cols, i % grid_cols, tile);
              auto [payload, flag] = encode_tile(header, tile);
              payloads[i] = std::move(payload);
              flags[i] = flag;
            }
          });
    }
    const std::uint64_t raw_size = chunk_elems * dtype_size(header.dtype);
    std::uint64_t cursor = kPreludeSize + head_size;
    std::vector<ChunkIndexEntry> index;
    index.reserve(n_chunks);
    for (std::size_t i = 0; i < n_chunks; ++i) {
      append_chunk(out, index, cursor, raw_size, payloads[i], flags[i]);
    }
    write_chunk_index(out, index);
  }
  out.close();
}

Dash5StreamWriter::Dash5StreamWriter(const std::string& path,
                                     const Dash5Header& header)
    : out_(path), header_(header), expected_(header.shape.size()) {
  const bool v3 = !header_.codec.empty();
  if (v3) {
    DASSA_CHECK(header_.layout == Layout::kChunked,
                "codec chains require the chunked layout");
    DASSA_CHECK(header_.chunk.rows >= 1 && header_.chunk.cols >= 1,
                "chunked layout needs positive chunk extents");
    band_.resize(header_.chunk.rows * header_.shape.cols);
  } else {
    DASSA_CHECK(header_.layout == Layout::kContiguous,
                "stream writer supports the contiguous layout only");
  }
  const std::vector<std::byte> head = encode_header(header_);
  out_.write(v3 ? kMagicV3 : kMagic, sizeof kMagic);
  const std::uint64_t head_size = head.size();
  out_.write(&head_size, sizeof head_size);
  out_.write(head.data(), head.size());
  cursor_ = kPreludeSize + head_size;
}

void Dash5StreamWriter::append(std::span<const double> data) {
  DASSA_CHECK(!closed_, "append on closed stream writer");
  DASSA_CHECK(written_ + data.size() <= expected_,
              "stream writer overflow: more elements than the header shape");
  if (header_.codec.empty()) {
    if (header_.dtype == DType::kF64) {
      out_.write(data.data(), data.size_bytes());
    } else {
      std::vector<float> f(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        f[i] = static_cast<float>(data[i]);
      }
      out_.write(f.data(), f.size() * sizeof(float));
    }
  } else {
    // Stage into the band buffer; every full band (chunk.rows complete
    // rows) is tiled and flushed, keeping memory at one band.
    std::size_t consumed = 0;
    while (consumed < data.size()) {
      const std::size_t take =
          std::min(band_.size() - band_fill_, data.size() - consumed);
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(consumed),
                data.begin() + static_cast<std::ptrdiff_t>(consumed + take),
                band_.begin() + static_cast<std::ptrdiff_t>(band_fill_));
      band_fill_ += take;
      consumed += take;
      if (band_fill_ == band_.size()) flush_band();
    }
  }
  written_ += data.size();
}

void Dash5StreamWriter::flush_band() {
  if (band_fill_ == 0) return;
  // Zero-fill the tail rows of a partial final band: tiles are always
  // stored at full chunk size, zero-padded, exactly like dash5_write.
  std::fill(band_.begin() + static_cast<std::ptrdiff_t>(band_fill_),
            band_.end(), 0.0);
  const ChunkShape chunk = header_.chunk;
  const std::size_t cols = header_.shape.cols;
  const std::size_t grid_cols = (cols + chunk.cols - 1) / chunk.cols;
  const std::size_t chunk_elems = chunk.rows * chunk.cols;
  std::vector<std::vector<std::byte>> payloads(grid_cols);
  std::vector<std::uint8_t> flags(grid_cols, 0);
  io_pool().parallel_for(
      grid_cols, [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<double> tile(chunk_elems);
        for (std::size_t gj = begin; gj < end; ++gj) {
          std::fill(tile.begin(), tile.end(), 0.0);
          const std::size_t c0 = gj * chunk.cols;
          const std::size_t c_cnt = std::min(chunk.cols, cols - c0);
          for (std::size_t r = 0; r < chunk.rows; ++r) {
            const double* src = band_.data() + r * cols + c0;
            std::copy(src, src + c_cnt, tile.data() + r * chunk.cols);
          }
          auto [payload, flag] = encode_tile(header_, tile);
          payloads[gj] = std::move(payload);
          flags[gj] = flag;
        }
      });
  const std::uint64_t raw_size = chunk_elems * dtype_size(header_.dtype);
  for (std::size_t gj = 0; gj < grid_cols; ++gj) {
    append_chunk(out_, index_, cursor_, raw_size, payloads[gj], flags[gj]);
  }
  band_fill_ = 0;
}

void Dash5StreamWriter::close() {
  if (closed_) return;
  if (written_ != expected_) {
    throw StateError("stream writer closed after " +
                     std::to_string(written_) + " of " +
                     std::to_string(expected_) + " elements");
  }
  if (!header_.codec.empty()) {
    flush_band();
    write_chunk_index(out_, index_);
  }
  out_.close();
  closed_ = true;
}

void Dash5File::set_readahead(bool on) {
  g_readahead.store(on, std::memory_order_relaxed);
}

bool Dash5File::readahead_enabled() {
  return g_readahead.load(std::memory_order_relaxed);
}

Dash5File::Dash5File(const std::string& path) : file_(path) {
  DASSA_TRACE_SPAN("io", "io.open");
  char magic[8];
  std::uint64_t head_size = 0;
  if (file_.size() < kPreludeSize) {
    throw FormatError("file too small to be DASH5: " + path);
  }
  // One read covers magic + header size + header block.
  file_.read_at(0, magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof magic - 1) != 0 ||
      (magic[7] != kMagic[7] && magic[7] != kMagicV3[7])) {
    throw FormatError("bad magic in " + path);
  }
  version_ = static_cast<std::uint8_t>(magic[7]);
  file_.read_at(8, &head_size, sizeof head_size);
  // Subtraction form: `kPreludeSize + head_size` wraps for a corrupted
  // size near 2^64 and would slip past the check into a huge read.
  if (head_size > file_.size() - kPreludeSize) {
    throw FormatError("header exceeds file in " + path);
  }
  const std::vector<std::byte> raw =
      file_.read_vec(kPreludeSize, static_cast<std::size_t>(head_size));
  header_ = decode_header(raw, path, version_);
  data_offset_ = kPreludeSize + head_size;

  // decode_header rejected extent-product overflow, but the chunked
  // stored size rounds each axis up to whole tiles, so recheck every
  // product here; then bound the element count by the bytes actually
  // present (division form -- the multiplied form wraps for corrupted
  // extents and would admit a shape far larger than the file).
  std::uint64_t stored_elems = header_.shape.size();
  if (header_.layout == Layout::kChunked) {
    const std::uint64_t grid_rows =
        header_.shape.rows / header_.chunk.rows +
        (header_.shape.rows % header_.chunk.rows != 0 ? 1 : 0);
    const std::uint64_t grid_cols =
        header_.shape.cols / header_.chunk.cols +
        (header_.shape.cols % header_.chunk.cols != 0 ? 1 : 0);
    const std::uint64_t chunk_elems = header_.chunk.rows * header_.chunk.cols;
    if (mul_overflows(grid_rows, grid_cols) ||
        mul_overflows(grid_rows * grid_cols, chunk_elems)) {
      throw FormatError("chunk grid overflow in " + path);
    }
    stored_elems = grid_rows * grid_cols * chunk_elems;
  }
  if (version_ >= 3) {
    // Chunk sizes are variable: the chunk index footer, not the shape,
    // says how many bytes are present. parse_chunk_index() validates
    // every entry against the file extents.
    parse_chunk_index();
    file_id_ = ChunkCache::next_file_id();
    prefetch_ = std::make_unique<Prefetch>();
    return;
  }
  const std::uint64_t avail = file_.size() - data_offset_;
  if (stored_elems >
      avail / static_cast<std::uint64_t>(dtype_size(header_.dtype))) {
    throw FormatError("dataset truncated in " + path);
  }
}

/// Readahead state. Tasks run on io_pool() and must stay leaf work
/// (a prefetch task never fans out again); the destructor closes the
/// gate and drains in-flight tasks before the file handle dies.
struct Dash5File::Prefetch {
  Mutex mu;
  CondVar cv;
  std::size_t inflight DASSA_GUARDED_BY(mu) = 0;
  bool closed DASSA_GUARDED_BY(mu) = false;
  std::set<std::pair<std::size_t, std::size_t>> pending DASSA_GUARDED_BY(mu);
  // Stride detector: two consecutive equal window steps arm the
  // prefetcher (sequential scans and strided sweeps both qualify).
  bool have_prev DASSA_GUARDED_BY(mu) = false;
  bool have_delta DASSA_GUARDED_BY(mu) = false;
  std::ptrdiff_t prev_gi DASSA_GUARDED_BY(mu) = 0;
  std::ptrdiff_t prev_gj DASSA_GUARDED_BY(mu) = 0;
  std::ptrdiff_t dgi DASSA_GUARDED_BY(mu) = 0;
  std::ptrdiff_t dgj DASSA_GUARDED_BY(mu) = 0;
};

Dash5File::~Dash5File() {
  if (prefetch_) {
    MutexLock lock(prefetch_->mu);
    prefetch_->closed = true;
    while (prefetch_->inflight != 0) prefetch_->cv.wait(lock);
  }
  if (file_id_ != 0) ChunkCache::global().erase_file(file_id_);
}

void Dash5File::drain_prefetch() const {
  if (!prefetch_) return;
  MutexLock lock(prefetch_->mu);
  while (prefetch_->inflight != 0) prefetch_->cv.wait(lock);
}

void Dash5File::parse_chunk_index() {
  const std::string& p = file_.path();
  const std::uint64_t fsize = file_.size();
  const auto [grid_rows, grid_cols] = chunk_grid(header_);
  const std::uint64_t n_chunks =
      static_cast<std::uint64_t>(grid_rows) * grid_cols;

  if (fsize - data_offset_ < kFooterTail) {
    throw FormatError("v3 file too small for its chunk index footer: " + p);
  }
  char magic[8];
  std::uint64_t index_size = 0;
  file_.read_at(fsize - 8, magic, sizeof magic);
  if (std::memcmp(magic, kIndexMagic, sizeof magic) != 0) {
    throw FormatError("bad chunk index magic in " + p);
  }
  file_.read_at(fsize - 16, &index_size, sizeof index_size);
  if (mul_overflows(n_chunks, kIndexEntrySize) ||
      index_size != n_chunks * kIndexEntrySize) {
    throw FormatError("chunk index size mismatch in " + p);
  }
  if (index_size > fsize - data_offset_ - kFooterTail) {
    throw FormatError("chunk index exceeds file in " + p);
  }
  const std::uint64_t index_start = fsize - kFooterTail - index_size;
  std::uint32_t stored_crc = 0;
  file_.read_at(fsize - kFooterTail, &stored_crc, sizeof stored_crc);
  const std::vector<std::byte> block =
      file_.read_vec(index_start, static_cast<std::size_t>(index_size));
  if (detail::crc32(block.data(), block.size()) != stored_crc) {
    throw FormatError("chunk index CRC mismatch in " + p);
  }

  const std::uint64_t chunk_bytes =
      static_cast<std::uint64_t>(header_.chunk.rows) * header_.chunk.cols *
      dtype_size(header_.dtype);
  detail::Decoder dec(block);
  index_.reserve(n_chunks);
  // Chunks are densely packed from the data offset: each entry must
  // start exactly where the previous one ended and stay below the
  // index block, which makes overlap and overflow unrepresentable.
  std::uint64_t cursor = data_offset_;
  for (std::uint64_t i = 0; i < n_chunks; ++i) {
    ChunkIndexEntry e;
    e.offset = dec.u64();
    e.csize = dec.u64();
    e.raw_size = dec.u64();
    e.crc = dec.u32();
    e.codec = dec.u8();
    if (e.offset != cursor) {
      throw FormatError("chunk index offsets not densely packed in " + p);
    }
    if (e.csize > index_start - cursor) {
      throw FormatError("chunk overruns the index block in " + p);
    }
    if (e.raw_size != chunk_bytes) {
      throw FormatError("chunk raw size disagrees with the header in " + p);
    }
    if (e.codec > 1) {
      throw FormatError("chunk codec flag out of range in " + p);
    }
    if (e.codec == 0 && e.csize != e.raw_size) {
      throw FormatError("raw-stored chunk with a compressed size in " + p);
    }
    cursor += e.csize;
    index_.push_back(e);
  }
}

std::vector<double> Dash5File::decode_chunk(
    std::size_t chunk_idx, std::span<const std::byte> stored) const {
  DASSA_TRACE_SPAN("codec", "codec.decode_chunk");
  const ChunkIndexEntry& e = index_[chunk_idx];
  if (detail::crc32(stored.data(), stored.size()) != e.crc) {
    throw FormatError("chunk " + std::to_string(chunk_idx) +
                      " CRC mismatch in " + file_.path());
  }
  const std::size_t chunk_elems = header_.chunk.rows * header_.chunk.cols;
  std::vector<double> tile(chunk_elems);
  if (e.codec == 0) {
    decode_elems({stored.begin(), stored.end()}, chunk_elems, tile.data());
  } else {
    const std::vector<std::byte> raw =
        decode_chain(header_.codec, stored, dtype_size(header_.dtype),
                     static_cast<std::size_t>(e.raw_size));
    decode_elems(raw, chunk_elems, tile.data());
  }
  return tile;
}

std::shared_ptr<const std::vector<double>> Dash5File::load_tile(
    std::size_t gi, std::size_t gj) const {
  DASSA_TRACE_SPAN("cache", "cache.load_tile");
  const auto [grid_rows, grid_cols] = chunk_grid(header_);
  const ChunkKey key{file_id_, gi, gj};
  ChunkCache& cache = ChunkCache::global();
  if (ChunkData hit = cache.get(key)) return hit;
  const ChunkIndexEntry& e = index_[gi * grid_cols + gj];
  std::vector<std::byte> stored;
  {
    MutexLock lock(io_mu_);
    stored = file_.read_vec(e.offset, static_cast<std::size_t>(e.csize));
  }
  auto tile = std::make_shared<const std::vector<double>>(
      decode_chunk(gi * grid_cols + gj, stored));
  cache.put(key, tile);
  return tile;
}

Dash5Header Dash5File::read_header(const std::string& path) {
  Dash5File f(path);
  return f.header_;
}

void Dash5File::decode_elems(const std::vector<std::byte>& raw,
                             std::size_t count, double* out) const {
  if (header_.dtype == DType::kF64) {
    std::memcpy(out, raw.data(), count * sizeof(double));
  } else {
    std::vector<float> f(count);
    std::memcpy(f.data(), raw.data(), count * sizeof(float));
    for (std::size_t i = 0; i < count; ++i) out[i] = f[i];
  }
}

std::vector<double> Dash5File::read_all() const {
  return read_slab(Slab2D::whole(header_.shape));
}

std::vector<double> Dash5File::read_slab(const Slab2D& slab) const {
  DASSA_TRACE_SPAN("io", "io.read_slab");
  slab.validate_against(header_.shape);
  const std::size_t esize = dtype_size(header_.dtype);
  std::vector<double> out(slab.size());
  if (slab.empty()) return out;

  if (version_ >= 3) return read_slab_v3(slab);

  if (header_.layout == Layout::kChunked) {
    // One contiguous read per intersecting chunk tile, then copy the
    // intersection out -- the HDF5 chunked-access pattern. Partial-width
    // selections touch O(selection/chunk) tiles instead of one request
    // per row.
    const ChunkShape chunk = header_.chunk;
    const std::size_t grid_cols =
        (header_.shape.cols + chunk.cols - 1) / chunk.cols;
    const std::size_t chunk_elems = chunk.rows * chunk.cols;
    std::vector<double> tile(chunk_elems);

    const std::size_t gi_lo = slab.row_off / chunk.rows;
    const std::size_t gi_hi = (slab.row_off + slab.row_cnt - 1) / chunk.rows;
    const std::size_t gj_lo = slab.col_off / chunk.cols;
    const std::size_t gj_hi = (slab.col_off + slab.col_cnt - 1) / chunk.cols;
    for (std::size_t gi = gi_lo; gi <= gi_hi; ++gi) {
      for (std::size_t gj = gj_lo; gj <= gj_hi; ++gj) {
        const std::uint64_t off =
            data_offset_ +
            static_cast<std::uint64_t>(gi * grid_cols + gj) * chunk_elems *
                esize;
        std::vector<std::byte> raw;
        {
          MutexLock lock(io_mu_);
          raw = file_.read_vec(off, chunk_elems * esize);
        }
        decode_elems(raw, chunk_elems, tile.data());

        // Intersection of this tile with the selection, in global
        // coordinates.
        const std::size_t r_lo = std::max(slab.row_off, gi * chunk.rows);
        const std::size_t r_hi = std::min(slab.row_off + slab.row_cnt,
                                          (gi + 1) * chunk.rows);
        const std::size_t c_lo = std::max(slab.col_off, gj * chunk.cols);
        const std::size_t c_hi = std::min(slab.col_off + slab.col_cnt,
                                          (gj + 1) * chunk.cols);
        for (std::size_t r = r_lo; r < r_hi; ++r) {
          const double* src = tile.data() +
                              (r - gi * chunk.rows) * chunk.cols +
                              (c_lo - gj * chunk.cols);
          std::copy(src, src + (c_hi - c_lo),
                    out.data() + (r - slab.row_off) * slab.col_cnt +
                        (c_lo - slab.col_off));
        }
      }
    }
    return out;
  }

  if (slab.col_cnt == header_.shape.cols) {
    // Full-width row block: contiguous on disk, one read call.
    const std::uint64_t off =
        data_offset_ + static_cast<std::uint64_t>(
                           header_.shape.at(slab.row_off, 0)) * esize;
    std::vector<std::byte> raw;
    {
      MutexLock lock(io_mu_);
      raw = file_.read_vec(off, slab.size() * esize);
    }
    decode_elems(raw, slab.size(), out.data());
  } else {
    // Partial width: one read per selected row. This is the small-I/O
    // pattern whose amplification across many files motivates the
    // communication-avoiding reader.
    for (std::size_t r = 0; r < slab.row_cnt; ++r) {
      const std::uint64_t off =
          data_offset_ +
          static_cast<std::uint64_t>(
              header_.shape.at(slab.row_off + r, slab.col_off)) * esize;
      std::vector<std::byte> raw;
      {
        MutexLock lock(io_mu_);
        raw = file_.read_vec(off, slab.col_cnt * esize);
      }
      decode_elems(raw, slab.col_cnt, out.data() + r * slab.col_cnt);
    }
  }
  return out;
}

std::vector<double> Dash5File::read_slab_v3(const Slab2D& slab) const {
  DASSA_TRACE_SPAN("cache", "cache.window_gather");
  const ChunkShape chunk = header_.chunk;
  std::vector<double> out(slab.size());

  const std::size_t gi_lo = slab.row_off / chunk.rows;
  const std::size_t gi_hi = (slab.row_off + slab.row_cnt - 1) / chunk.rows;
  const std::size_t gj_lo = slab.col_off / chunk.cols;
  const std::size_t gj_hi = (slab.col_off + slab.col_cnt - 1) / chunk.cols;

  // Gather the window's tiles: cache hits immediately, misses as a
  // batch — stored bytes are read serially (one I/O pass), then
  // decoded in parallel on the I/O pool when the batch is large
  // enough to pay for the fan-out.
  struct Want {
    std::size_t gi, gj;
    ChunkData tile;
  };
  std::vector<Want> wants;
  wants.reserve((gi_hi - gi_lo + 1) * (gj_hi - gj_lo + 1));
  for (std::size_t gi = gi_lo; gi <= gi_hi; ++gi) {
    for (std::size_t gj = gj_lo; gj <= gj_hi; ++gj) {
      wants.push_back({gi, gj, ChunkCache::global().get({file_id_, gi, gj})});
    }
  }
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < wants.size(); ++i) {
    if (!wants[i].tile) misses.push_back(i);
  }
  if (!misses.empty()) {
    const auto [grid_rows, grid_cols] = chunk_grid(header_);
    std::vector<std::vector<std::byte>> stored(misses.size());
    {
      MutexLock lock(io_mu_);
      for (std::size_t k = 0; k < misses.size(); ++k) {
        const Want& w = wants[misses[k]];
        const ChunkIndexEntry& e = index_[w.gi * grid_cols + w.gj];
        stored[k] = file_.read_vec(e.offset, static_cast<std::size_t>(e.csize));
      }
    }
    const auto decode_one = [&](std::size_t k) {
      Want& w = wants[misses[k]];
      w.tile = std::make_shared<const std::vector<double>>(
          decode_chunk(w.gi * grid_cols + w.gj, stored[k]));
      ChunkCache::global().put({file_id_, w.gi, w.gj}, w.tile);
    };
    if (misses.size() >= 4) {
      io_pool().parallel_for(misses.size(),
                             [&](std::size_t, std::size_t b, std::size_t e) {
                               for (std::size_t k = b; k < e; ++k) {
                                 decode_one(k);
                               }
                             });
    } else {
      for (std::size_t k = 0; k < misses.size(); ++k) decode_one(k);
    }
  }

  for (const Want& w : wants) {
    // Intersection of this tile with the selection, in global
    // coordinates (same arithmetic as the v2 chunked path).
    const std::size_t r_lo = std::max(slab.row_off, w.gi * chunk.rows);
    const std::size_t r_hi =
        std::min(slab.row_off + slab.row_cnt, (w.gi + 1) * chunk.rows);
    const std::size_t c_lo = std::max(slab.col_off, w.gj * chunk.cols);
    const std::size_t c_hi =
        std::min(slab.col_off + slab.col_cnt, (w.gj + 1) * chunk.cols);
    for (std::size_t r = r_lo; r < r_hi; ++r) {
      const double* src = w.tile->data() + (r - w.gi * chunk.rows) * chunk.cols +
                          (c_lo - w.gj * chunk.cols);
      std::copy(src, src + (c_hi - c_lo),
                out.data() + (r - slab.row_off) * slab.col_cnt +
                    (c_lo - slab.col_off));
    }
  }

  maybe_prefetch(gi_lo, gi_hi, gj_lo, gj_hi);
  return out;
}

void Dash5File::maybe_prefetch(std::size_t gi_lo, std::size_t gi_hi,
                               std::size_t gj_lo, std::size_t gj_hi) const {
  if (!readahead_enabled()) return;
  Prefetch& pf = *prefetch_;
  const auto [grid_rows, grid_cols] = chunk_grid(header_);
  std::vector<std::pair<std::size_t, std::size_t>> targets;
  {
    MutexLock lock(pf.mu);
    if (pf.closed) return;
    const auto gi = static_cast<std::ptrdiff_t>(gi_lo);
    const auto gj = static_cast<std::ptrdiff_t>(gj_lo);
    if (pf.have_prev) {
      const std::ptrdiff_t dgi = gi - pf.prev_gi;
      const std::ptrdiff_t dgj = gj - pf.prev_gj;
      if (pf.have_delta && dgi == pf.dgi && dgj == pf.dgj &&
          (dgi != 0 || dgj != 0)) {
        // Two consecutive equal steps: predict the next window (the
        // current one shifted by the stride, clipped to the grid).
        for (std::size_t wi = gi_lo; wi <= gi_hi; ++wi) {
          for (std::size_t wj = gj_lo; wj <= gj_hi; ++wj) {
            const auto ti = static_cast<std::ptrdiff_t>(wi) + dgi;
            const auto tj = static_cast<std::ptrdiff_t>(wj) + dgj;
            if (ti < 0 || tj < 0 ||
                ti >= static_cast<std::ptrdiff_t>(grid_rows) ||
                tj >= static_cast<std::ptrdiff_t>(grid_cols)) {
              continue;
            }
            const std::pair<std::size_t, std::size_t> t{
                static_cast<std::size_t>(ti), static_cast<std::size_t>(tj)};
            if (pf.pending.insert(t).second) {
              targets.push_back(t);
              ++pf.inflight;
            }
          }
        }
      }
      pf.dgi = dgi;
      pf.dgj = dgj;
      pf.have_delta = true;
    }
    pf.prev_gi = gi;
    pf.prev_gj = gj;
    pf.have_prev = true;
  }
  for (const auto& t : targets) {
    global_counters().add(counters::kIoCachePrefetchIssued, 1);
    io_pool().submit([this, t] {
      bool run = false;
      {
        MutexLock lock(prefetch_->mu);
        run = !prefetch_->closed;
      }
      if (run) {
        // Background warm-up is best-effort: a corrupt chunk must
        // surface on the foreground read that needs it, not here.
        DASSA_TRACE_SPAN("cache", "cache.prefetch");
        try {
          (void)load_tile(t.first, t.second);
        } catch (const std::exception&) {
        }
      }
      MutexLock lock(prefetch_->mu);
      prefetch_->pending.erase(t);
      --prefetch_->inflight;
      prefetch_->cv.notify_all();
    });
  }
}

}  // namespace dassa::io
