#include "dassa/io/par_read.hpp"

#include <algorithm>

#include "dassa/common/trace.hpp"
#include "dassa/io/dash5.hpp"

namespace dassa::io {

namespace {

/// Copy `src_rows x src_cols` row-major `src` rows into `dst` (whose
/// row stride is `dst_stride`) starting at column `dst_col`.
void place_block(const double* src, std::size_t src_rows,
                 std::size_t src_cols, double* dst, std::size_t dst_stride,
                 std::size_t dst_col) {
  for (std::size_t r = 0; r < src_rows; ++r) {
    std::copy(src + r * src_cols, src + (r + 1) * src_cols,
              dst + r * dst_stride + dst_col);
  }
}

}  // namespace

ParallelReadResult read_vca_collective_per_file(mpi::Comm& comm,
                                                const Vca& vca,
                                                const IoCostParams& io) {
  DASSA_TRACE_SPAN("par_read", "par_read.collective_per_file");
  const int p = comm.size();
  const int rank = comm.rank();
  const Shape2D total = vca.shape();
  const Range rows =
      even_chunk(total.rows, static_cast<std::size_t>(p),
                 static_cast<std::size_t>(rank));

  ParallelReadResult result;
  result.rows = rows;
  result.shape = {rows.size(), total.cols};
  result.data.assign(result.shape.size(), 0.0);

  const auto& members = vca.members();
  for (std::size_t m = 0; m < members.size(); ++m) {
    // Aggregator for this file reads it whole (one contiguous I/O
    // call), then broadcasts the full file to all ranks.
    const int aggregator = static_cast<int>(m % static_cast<std::size_t>(p));
    std::vector<double> file_data;
    if (rank == aggregator) {
      DASSA_TRACE_SPAN("par_read", "par_read.file_read");
      Dash5File file(members[m].path);
      file_data = file.read_all();
      comm.charge_modeled_seconds(io.call_cost(
          file_data.size() * sizeof(double), comm.size()));
    }
    {
      DASSA_TRACE_SPAN("par_read", "par_read.bcast");
      comm.bcast(file_data, aggregator);
    }

    // Every rank keeps only its own channel block of the file.
    const std::size_t cols = members[m].shape.cols;
    place_block(file_data.data() + rows.begin * cols, rows.size(), cols,
                result.data.data(), total.cols, vca.member_col_start(m));
  }
  return result;
}

ParallelReadResult read_vca_comm_avoiding(mpi::Comm& comm, const Vca& vca,
                                          const IoCostParams& io) {
  DASSA_TRACE_SPAN("par_read", "par_read.comm_avoiding");
  const int p = comm.size();
  const int rank = comm.rank();
  const Shape2D total = vca.shape();
  const auto& members = vca.members();
  const std::size_t n = members.size();

  auto rank_rows = [&](int q) {
    return even_chunk(total.rows, static_cast<std::size_t>(p),
                      static_cast<std::size_t>(q));
  };
  const Range rows = rank_rows(rank);

  // Phase 1: read my round-robin share of files, whole-file contiguous
  // reads, and carve each file into per-destination channel blocks.
  std::vector<std::vector<double>> per_dest(static_cast<std::size_t>(p));
  for (std::size_t m = static_cast<std::size_t>(rank); m < n;
       m += static_cast<std::size_t>(p)) {
    DASSA_TRACE_SPAN("par_read", "par_read.local_read");
    Dash5File file(members[m].path);
    const std::vector<double> data = file.read_all();
    comm.charge_modeled_seconds(
        io.call_cost(data.size() * sizeof(double), comm.size()));
    const std::size_t cols = members[m].shape.cols;
    for (int q = 0; q < p; ++q) {
      const Range qr = rank_rows(q);
      auto& payload = per_dest[static_cast<std::size_t>(q)];
      payload.insert(payload.end(), data.begin() + static_cast<std::ptrdiff_t>(
                                                       qr.begin * cols),
                     data.begin() + static_cast<std::ptrdiff_t>(qr.end * cols));
    }
  }

  // Phase 2: one all-to-all routes every block to its owner.
  std::vector<std::vector<double>> received;
  {
    DASSA_TRACE_SPAN("par_read", "par_read.exchange");
    received = comm.alltoallv(per_dest);
  }

  // Phase 3: assemble. The round-robin assignment is deterministic, so
  // rank r's payload is the concatenation of my channel block of files
  // r, r+p, r+2p, ... in that order.
  DASSA_TRACE_SPAN("par_read", "par_read.assemble");
  ParallelReadResult result;
  result.rows = rows;
  result.shape = {rows.size(), total.cols};
  result.data.assign(result.shape.size(), 0.0);
  for (int src = 0; src < p; ++src) {
    const std::vector<double>& payload =
        received[static_cast<std::size_t>(src)];
    std::size_t off = 0;
    for (std::size_t m = static_cast<std::size_t>(src); m < n;
         m += static_cast<std::size_t>(p)) {
      const std::size_t cols = members[m].shape.cols;
      place_block(payload.data() + off, rows.size(), cols,
                  result.data.data(), total.cols, vca.member_col_start(m));
      off += rows.size() * cols;
    }
    DASSA_CHECK(off == payload.size(),
                "communication-avoiding payload size mismatch");
  }
  return result;
}

ParallelReadResult read_vca_direct_per_rank(mpi::Comm& comm, const Vca& vca,
                                            const IoCostParams& io) {
  DASSA_TRACE_SPAN("par_read", "par_read.direct_per_rank");
  const int p = comm.size();
  const int rank = comm.rank();
  const Shape2D total = vca.shape();
  const Range rows =
      even_chunk(total.rows, static_cast<std::size_t>(p),
                 static_cast<std::size_t>(rank));

  ParallelReadResult result;
  result.rows = rows;
  result.shape = {rows.size(), total.cols};
  result.data.assign(result.shape.size(), 0.0);

  const auto& members = vca.members();
  for (std::size_t m = 0; m < members.size(); ++m) {
    Dash5File file(members[m].path);
    const std::size_t cols = members[m].shape.cols;
    const std::vector<double> part =
        file.read_slab(Slab2D{rows.begin, 0, rows.size(), cols});
    // Every rank strides into this same member file concurrently.
    comm.charge_modeled_seconds(
        io.shared_call_cost(part.size() * sizeof(double), p));
    place_block(part.data(), rows.size(), cols, result.data.data(),
                total.cols, vca.member_col_start(m));
  }
  return result;
}

ParallelReadResult read_rca_direct(mpi::Comm& comm,
                                   const std::string& rca_path,
                                   const IoCostParams& io) {
  DASSA_TRACE_SPAN("par_read", "par_read.rca_direct");
  const int p = comm.size();
  const int rank = comm.rank();
  Dash5File file(rca_path);
  const Shape2D total = file.shape();
  const Range rows =
      even_chunk(total.rows, static_cast<std::size_t>(p),
                 static_cast<std::size_t>(rank));

  ParallelReadResult result;
  result.rows = rows;
  result.shape = {rows.size(), total.cols};
  result.data =
      file.read_slab(Slab2D{rows.begin, 0, rows.size(), total.cols});
  // All p ranks stride into the same merged file concurrently.
  comm.charge_modeled_seconds(
      io.shared_call_cost(result.data.size() * sizeof(double), p));
  return result;
}

}  // namespace dassa::io
