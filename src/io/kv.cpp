#include "dassa/io/kv.hpp"

#include <charconv>

namespace dassa::io {

void KvList::set(std::string key, std::string value) {
  DASSA_CHECK(!key.empty(), "metadata key must be non-empty");
  for (auto& [k, v] : items_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  items_.emplace_back(std::move(key), std::move(value));
}

void KvList::set_i64(const std::string& key, std::int64_t value) {
  DASSA_CHECK(!key.empty(), "metadata key must be non-empty");
  set(key, std::to_string(value));
}

void KvList::set_f64(const std::string& key, double value) {
  DASSA_CHECK(!key.empty(), "metadata key must be non-empty");
  set(key, std::to_string(value));
}

std::optional<std::string> KvList::get(std::string_view key) const {
  DASSA_CHECK(!key.empty(), "metadata key must be non-empty");
  for (const auto& [k, v] : items_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string KvList::get_or_throw(std::string_view key) const {
  auto v = get(key);
  if (!v) throw InvalidArgument("metadata key not found: " + std::string(key));
  return *v;
}

std::int64_t KvList::get_i64(std::string_view key) const {
  const std::string v = get_or_throw(key);
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    throw InvalidArgument("metadata value for '" + std::string(key) +
                          "' is not an integer: " + v);
  }
  return out;
}

double KvList::get_f64(std::string_view key) const {
  const std::string v = get_or_throw(key);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos == v.size()) return out;
  } catch (const std::exception&) {
    // fall through to the typed error below
  }
  throw InvalidArgument("metadata value for '" + std::string(key) +
                        "' is not a number: " + v);
}

bool KvList::contains(std::string_view key) const {
  DASSA_CHECK(!key.empty(), "metadata key must be non-empty");
  return get(key).has_value();
}

}  // namespace dassa::io
