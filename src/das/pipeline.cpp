#include "dassa/das/pipeline.hpp"

#include "dassa/common/counters.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/dsp/daslib.hpp"

namespace dassa::das {

ChannelPipeline::ChannelPipeline(double sampling_hz)
    : sampling_hz_(sampling_hz),
      stages_(std::make_shared<
              std::vector<std::pair<std::string, Stage>>>()) {
  DASSA_CHECK(sampling_hz > 0.0, "sampling rate must be positive");
}

void ChannelPipeline::add(std::string name, Stage stage) {
  stages_->emplace_back(std::move(name), std::move(stage));
}

void ChannelPipeline::check_band_edge(double hz) const {
  DASSA_CHECK(hz > 0.0 && hz < sampling_hz_ / 2.0,
              "frequency must lie strictly between 0 and Nyquist (" +
                  std::to_string(sampling_hz_ / 2.0) + " Hz)");
}

ChannelPipeline& ChannelPipeline::detrend() {
  add("detrend", [](std::vector<double> x) {
    dsp::detrend_linear_inplace(x);
    return x;
  });
  return *this;
}

ChannelPipeline& ChannelPipeline::demean() {
  add("demean", [](std::vector<double> x) {
    dsp::detrend_constant_inplace(x);
    return x;
  });
  return *this;
}

ChannelPipeline& ChannelPipeline::despike(std::size_t half, double k_mad) {
  DASSA_CHECK(k_mad > 0.0, "MAD multiplier must be positive");
  add("despike", [half, k_mad](std::vector<double> x) {
    return dsp::despike_mad(x, half, k_mad);
  });
  return *this;
}

ChannelPipeline& ChannelPipeline::taper(double alpha) {
  DASSA_CHECK(alpha >= 0.0 && alpha <= 1.0, "taper alpha must be in [0,1]");
  add("taper", [alpha](std::vector<double> x) {
    const std::vector<double> w = dsp::tukey_window(x.size(), alpha);
    dsp::apply_window(x, w);
    return x;
  });
  return *this;
}

ChannelPipeline& ChannelPipeline::bandpass(int order, double lo_hz,
                                           double hi_hz) {
  check_band_edge(lo_hz);
  check_band_edge(hi_hz);
  DASSA_CHECK(lo_hz < hi_hz, "bandpass requires lo < hi");
  const double nyquist = sampling_hz_ / 2.0;
  const dsp::FilterCoeffs coeffs =
      dsp::butter_bandpass(order, lo_hz / nyquist, hi_hz / nyquist);
  add("bandpass", [coeffs](std::vector<double> x) {
    return dsp::filtfilt(coeffs, x);
  });
  return *this;
}

ChannelPipeline& ChannelPipeline::lowpass(int order, double cut_hz) {
  check_band_edge(cut_hz);
  const dsp::FilterCoeffs coeffs =
      dsp::butter_lowpass(order, cut_hz / (sampling_hz_ / 2.0));
  add("lowpass", [coeffs](std::vector<double> x) {
    return dsp::filtfilt(coeffs, x);
  });
  return *this;
}

ChannelPipeline& ChannelPipeline::highpass(int order, double cut_hz) {
  check_band_edge(cut_hz);
  const dsp::FilterCoeffs coeffs =
      dsp::butter_highpass(order, cut_hz / (sampling_hz_ / 2.0));
  add("highpass", [coeffs](std::vector<double> x) {
    return dsp::filtfilt(coeffs, x);
  });
  return *this;
}

ChannelPipeline& ChannelPipeline::resample(std::size_t up,
                                           std::size_t down) {
  DASSA_CHECK(up >= 1 && down >= 1, "resample factors must be positive");
  add("resample", [up, down](std::vector<double> x) {
    return dsp::resample(x, up, down);
  });
  sampling_hz_ *= static_cast<double>(up) / static_cast<double>(down);
  return *this;
}

ChannelPipeline& ChannelPipeline::whiten(std::size_t smooth_bins) {
  DASSA_CHECK(smooth_bins >= 1, "whitening needs >= 1 smoothing bin");
  add("whiten", [smooth_bins](std::vector<double> x) {
    return dsp::spectral_whiten(x, smooth_bins);
  });
  return *this;
}

ChannelPipeline& ChannelPipeline::one_bit() {
  add("one_bit",
      [](std::vector<double> x) { return dsp::one_bit(x); });
  return *this;
}

ChannelPipeline& ChannelPipeline::envelope() {
  add("envelope",
      [](std::vector<double> x) { return dsp::envelope(x); });
  return *this;
}

ChannelPipeline& ChannelPipeline::custom(std::string name, Stage stage) {
  DASSA_CHECK(stage != nullptr, "custom stage must be callable");
  add(std::move(name), std::move(stage));
  return *this;
}

std::vector<double> ChannelPipeline::run(std::vector<double> x) const {
  DASSA_TRACE_SPAN("dsp", "dsp.pipeline_run");
  for (const auto& [name, stage] : *stages_) {
    x = stage(std::move(x));
  }
  // Progress hook: one registry add per channel run, so the telemetry
  // sampler sees DSP throughput without touching the per-sample loops.
  global_counters().add(counters::kTelemetryPipelineRows);
  return x;
}

core::RowUdf ChannelPipeline::build() const {
  // Snapshot the stage list: stages added to the builder afterwards do
  // not affect already-built pipelines.
  auto snapshot = std::make_shared<
      const std::vector<std::pair<std::string, Stage>>>(*stages_);
  return [snapshot](const core::Stencil& s) {
    DASSA_TRACE_SPAN("dsp", "dsp.pipeline_row");
    const std::span<const double> row = s.row_span(0);
    std::vector<double> x(row.begin(), row.end());
    for (const auto& [name, stage] : *snapshot) {
      x = stage(std::move(x));
    }
    return x;
  };
}

core::RowUdf ChannelPipeline::correlate_with_master(
    std::vector<dsp::cplx> master_spectrum) const {
  const core::RowUdf chain = build();
  return [chain, master = std::move(master_spectrum)](
             const core::Stencil& s) -> std::vector<double> {
    const std::vector<double> processed = chain(s);
    const std::vector<dsp::cplx> spec = dsp::rfft(processed);
    DASSA_CHECK(spec.size() == master.size(),
                "channel spectrum length differs from the master's; "
                "prepare the master with the same pipeline");
    return {dsp::abscorr(std::span<const dsp::cplx>(spec),
                         std::span<const dsp::cplx>(master))};
  };
}

std::vector<dsp::cplx> ChannelPipeline::spectrum(
    std::vector<double> x) const {
  return dsp::rfft(run(std::move(x)));
}

std::vector<std::string> ChannelPipeline::stage_names() const {
  std::vector<std::string> names;
  names.reserve(stages_->size());
  for (const auto& [name, _] : *stages_) names.push_back(name);
  return names;
}

}  // namespace dassa::das
