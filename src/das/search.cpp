#include "dassa/das/search.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <regex>

#include "dassa/common/counters.hpp"
#include "dassa/common/log.hpp"
#include "dassa/io/dash5.hpp"

namespace dassa::das {

namespace {

/// Extract "yymmddhhmmss" from a path ending in "_<12 digits>.dh5";
/// returns empty if the pattern does not match.
std::string timestamp_from_name(const std::filesystem::path& p) {
  const std::string stem = p.stem().string();
  if (stem.size() < 13) return {};
  const std::string tail = stem.substr(stem.size() - 12);
  if (stem[stem.size() - 13] != '_') return {};
  for (char c : tail) {
    if (c < '0' || c > '9') return {};
  }
  return tail;
}

}  // namespace

Catalog Catalog::scan(const std::string& dir, bool read_headers) {
  std::vector<DasFileInfo> entries;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    // Extension first: a pure string test, so non-acquisition clutter
    // costs nothing. The metadata-light path below also skips the
    // is_regular_file() stat -- a names-only scan of a large spool
    // touches the directory entries and nothing else (the timestamp
    // suffix requirement already rejects any pathological directory
    // named like an acquisition file).
    if (entry.path().extension() != ".dh5") continue;
    DasFileInfo info;
    info.path = entry.path().string();
    if (read_headers) {
      if (!entry.is_regular_file()) continue;
      const io::Dash5Header h = io::Dash5File::read_header(info.path);
      info.timestamp =
          Timestamp::parse(h.global.get_or_throw(io::meta::kTimeStamp));
      info.shape = h.shape;
    } else {
      const std::string ts = timestamp_from_name(entry.path());
      if (ts.empty()) continue;  // not an acquisition file
      info.timestamp = Timestamp::parse(ts);
    }
    entries.push_back(std::move(info));
  }
  return from_entries(std::move(entries));
}

Catalog Catalog::from_entries(std::vector<DasFileInfo> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const DasFileInfo& a, const DasFileInfo& b) {
              return a.timestamp < b.timestamp ||
                     (a.timestamp == b.timestamp && a.path < b.path);
            });
  Catalog c;
  c.entries_ = std::move(entries);
  return c;
}

std::vector<DasFileInfo> Catalog::query_range(const Timestamp& start,
                                              std::size_t count) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), start,
      [](const DasFileInfo& a, const Timestamp& t) { return a.timestamp < t; });
  const std::size_t first = static_cast<std::size_t>(it - entries_.begin());
  const std::size_t last = std::min(entries_.size(), first + count);
  return {entries_.begin() + static_cast<std::ptrdiff_t>(first),
          entries_.begin() + static_cast<std::ptrdiff_t>(last)};
}

std::vector<DasFileInfo> Catalog::query_interval(const Timestamp& begin,
                                                 const Timestamp& end) const {
  if (end <= begin) return {};
  const auto by_time = [](const DasFileInfo& a, const Timestamp& t) {
    return a.timestamp < t;
  };
  const auto lo =
      std::lower_bound(entries_.begin(), entries_.end(), begin, by_time);
  const auto hi = std::lower_bound(lo, entries_.end(), end, by_time);
  return {lo, hi};
}

std::vector<DasFileInfo> Catalog::query_vca_interval(
    const std::string& vca_path, const Timestamp& begin,
    const Timestamp& end) {
  const io::Vca vca = io::Vca::load(vca_path);
  const std::string sidecar = io::IntervalIndex::sidecar_path(vca_path);
  std::vector<io::IntervalEntry> hits;
  if (std::filesystem::exists(sidecar)) {
    // A present-but-unreadable sidecar is corruption, not absence; the
    // load's FormatError propagates instead of silently rescanning.
    const io::IntervalIndex idx = io::IntervalIndex::load(sidecar);
    hits = idx.query(begin.epoch_seconds(), end.epoch_seconds());
  } else {
    DASSA_SLOG(kWarn, "search.index_fallback")
        .field("vca", vca_path)
        .field("members", vca.members().size());
    global_counters().add(counters::kIoIndexFallbacks);
    // Linear fallback: derive every member's extent (one entry touch
    // each -- the O(n) cost the sidecar exists to avoid) and filter.
    const io::IntervalIndex idx = build_interval_index(vca);
    global_counters().add(counters::kIoIndexEntryTouches,
                          idx.entries().size());
    const std::int64_t qb = begin.epoch_seconds();
    const std::int64_t qe = end.epoch_seconds();
    for (const io::IntervalEntry& e : idx.entries()) {
      if (e.end_s > qb && e.begin_s < qe) hits.push_back(e);
    }
  }
  std::vector<DasFileInfo> out;
  out.reserve(hits.size());
  for (const io::IntervalEntry& e : hits) {
    DASSA_CHECK(e.member < vca.members().size(),
                "interval entry points past the VCA members");
    const io::VcaMember& m = vca.members()[e.member];
    out.push_back(DasFileInfo{
        m.path, Timestamp{}.plus_seconds(e.begin_s), m.shape});
  }
  return out;
}

std::vector<DasFileInfo> Catalog::query_regex(
    const std::string& pattern) const {
  const std::regex re(pattern);
  std::vector<DasFileInfo> out;
  for (const auto& e : entries_) {
    if (std::regex_match(e.timestamp.str(), re)) out.push_back(e);
  }
  return out;
}

std::vector<std::string> Catalog::paths(
    const std::vector<DasFileInfo>& infos) {
  std::vector<std::string> out;
  out.reserve(infos.size());
  for (const auto& i : infos) out.push_back(i.path);
  return out;
}

std::optional<Timestamp> timestamp_from_filename(const std::string& path) {
  DASSA_CHECK(!path.empty(), "timestamp_from_filename needs a path");
  const std::string ts = timestamp_from_name(std::filesystem::path(path));
  if (ts.empty()) return std::nullopt;
  return Timestamp::parse(ts);
}

namespace {

/// A member's begin timestamp: from its filename when possible (no
/// I/O), from its header otherwise (one open).
Timestamp member_timestamp(const io::VcaMember& m) {
  if (const auto ts = timestamp_from_filename(m.path)) return *ts;
  const io::Dash5Header h = io::Dash5File::read_header(m.path);
  return Timestamp::parse(h.global.get_or_throw(io::meta::kTimeStamp));
}

}  // namespace

io::IntervalIndex build_interval_index(const io::Vca& vca) {
  DASSA_CHECK(!vca.members().empty(),
              "cannot index an empty VCA");
  const double rate = vca.global_meta().get_f64(io::meta::kSamplingFrequencyHz);
  DASSA_CHECK(rate > 0.0, "VCA sampling rate must be positive");
  std::vector<io::IntervalEntry> entries;
  entries.reserve(vca.members().size());
  for (std::size_t i = 0; i < vca.members().size(); ++i) {
    const io::VcaMember& m = vca.members()[i];
    io::IntervalEntry e;
    e.begin_s = member_timestamp(m).epoch_seconds();
    // Round the duration up so the extent covers the last sample; a
    // sub-second file still owns a one-second interval.
    const double dur = std::ceil(static_cast<double>(m.shape.cols) / rate);
    e.end_s = e.begin_s + std::max<std::int64_t>(1, static_cast<std::int64_t>(dur));
    e.member = i;
    e.col_start = vca.member_col_start(i);
    e.cols = m.shape.cols;
    entries.push_back(e);
  }
  return io::IntervalIndex::build(std::move(entries));
}

void save_vca_with_index(const io::Vca& vca, const std::string& path) {
  DASSA_CHECK(!path.empty(), "save_vca_with_index needs a path");
  vca.save_atomic(path);
  build_interval_index(vca).save_atomic(io::IntervalIndex::sidecar_path(path));
}

}  // namespace dassa::das
