#include "dassa/das/search.hpp"

#include <algorithm>
#include <filesystem>
#include <regex>

#include "dassa/io/dash5.hpp"

namespace dassa::das {

namespace {

/// Extract "yymmddhhmmss" from a path ending in "_<12 digits>.dh5";
/// returns empty if the pattern does not match.
std::string timestamp_from_name(const std::filesystem::path& p) {
  const std::string stem = p.stem().string();
  if (stem.size() < 13) return {};
  const std::string tail = stem.substr(stem.size() - 12);
  if (stem[stem.size() - 13] != '_') return {};
  for (char c : tail) {
    if (c < '0' || c > '9') return {};
  }
  return tail;
}

}  // namespace

Catalog Catalog::scan(const std::string& dir, bool read_headers) {
  std::vector<DasFileInfo> entries;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    // Extension first: a pure string test, so non-acquisition clutter
    // costs nothing. The metadata-light path below also skips the
    // is_regular_file() stat -- a names-only scan of a large spool
    // touches the directory entries and nothing else (the timestamp
    // suffix requirement already rejects any pathological directory
    // named like an acquisition file).
    if (entry.path().extension() != ".dh5") continue;
    DasFileInfo info;
    info.path = entry.path().string();
    if (read_headers) {
      if (!entry.is_regular_file()) continue;
      const io::Dash5Header h = io::Dash5File::read_header(info.path);
      info.timestamp =
          Timestamp::parse(h.global.get_or_throw(io::meta::kTimeStamp));
      info.shape = h.shape;
    } else {
      const std::string ts = timestamp_from_name(entry.path());
      if (ts.empty()) continue;  // not an acquisition file
      info.timestamp = Timestamp::parse(ts);
    }
    entries.push_back(std::move(info));
  }
  return from_entries(std::move(entries));
}

Catalog Catalog::from_entries(std::vector<DasFileInfo> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const DasFileInfo& a, const DasFileInfo& b) {
              return a.timestamp < b.timestamp ||
                     (a.timestamp == b.timestamp && a.path < b.path);
            });
  Catalog c;
  c.entries_ = std::move(entries);
  return c;
}

std::vector<DasFileInfo> Catalog::query_range(const Timestamp& start,
                                              std::size_t count) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), start,
      [](const DasFileInfo& a, const Timestamp& t) { return a.timestamp < t; });
  const std::size_t first = static_cast<std::size_t>(it - entries_.begin());
  const std::size_t last = std::min(entries_.size(), first + count);
  return {entries_.begin() + static_cast<std::ptrdiff_t>(first),
          entries_.begin() + static_cast<std::ptrdiff_t>(last)};
}

std::vector<DasFileInfo> Catalog::query_interval(const Timestamp& begin,
                                                 const Timestamp& end) const {
  std::vector<DasFileInfo> out;
  for (const auto& e : entries_) {
    if (begin <= e.timestamp && e.timestamp < end) out.push_back(e);
  }
  return out;
}

std::vector<DasFileInfo> Catalog::query_regex(
    const std::string& pattern) const {
  const std::regex re(pattern);
  std::vector<DasFileInfo> out;
  for (const auto& e : entries_) {
    if (std::regex_match(e.timestamp.str(), re)) out.push_back(e);
  }
  return out;
}

std::vector<std::string> Catalog::paths(
    const std::vector<DasFileInfo>& infos) {
  std::vector<std::string> out;
  out.reserve(infos.size());
  for (const auto& i : infos) out.push_back(i.path);
  return out;
}

}  // namespace dassa::das
