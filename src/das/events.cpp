#include "dassa/das/events.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "dassa/common/error.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/dsp/median.hpp"

namespace dassa::das {

const char* event_class_name(EventClass c) {
  DASSA_CHECK(c == EventClass::kEarthquake || c == EventClass::kVehicle ||
                  c == EventClass::kPersistent || c == EventClass::kUnknown,
              "event_class_name: value outside the EventClass enum");
  switch (c) {
    case EventClass::kEarthquake:
      return "earthquake";
    case EventClass::kVehicle:
      return "vehicle";
    case EventClass::kPersistent:
      return "persistent";
    case EventClass::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

/// Events in a Fig. 10-style map CROSS each other: a quake stripe
/// intersects every persistent band, and a long vehicle track can touch
/// the quake's time window, so naive connected components weld them
/// into one blob. The detector therefore peels event classes off in
/// projection order:
///   pass 1 -- persistent sources: channels whose above-threshold
///             occupancy covers most of the record (row projection);
///   pass 2 -- earthquakes: time columns where most of the remaining
///             channels fire at once (column projection);
///   pass 3 -- vehicles: connected components of what is left, with the
///             track slope from a least-squares fit.

constexpr std::size_t kGroupGap = 4;  ///< bridge small projection gaps

struct Accumulator {
  DetectedEvent e;
  double sum = 0.0;
  double sum_t = 0.0;
  double sum_ch = 0.0;
  double sum_tt = 0.0;
  double sum_tch = 0.0;
  bool first = true;

  void add(std::size_t r, std::size_t c, double v) {
    if (first) {
      e.channel_lo = e.channel_hi = r;
      e.time_lo = e.time_hi = c;
      first = false;
    }
    e.channel_lo = std::min(e.channel_lo, r);
    e.channel_hi = std::max(e.channel_hi, r);
    e.time_lo = std::min(e.time_lo, c);
    e.time_hi = std::max(e.time_hi, c);
    e.cells += 1;
    e.peak_similarity = std::max(e.peak_similarity, v);
    sum += v;
    const double t = static_cast<double>(c);
    const double ch = static_cast<double>(r);
    sum_t += t;
    sum_ch += ch;
    sum_tt += t * t;
    sum_tch += t * ch;
  }

  DetectedEvent finish(EventClass type) {
    e.type = type;
    const double n = static_cast<double>(e.cells);
    e.mean_similarity = n > 0 ? sum / n : 0.0;
    const double var_t = sum_tt - sum_t * sum_t / std::max(1.0, n);
    if (var_t > 1e-9) {
      e.slope_channels_per_sample =
          (sum_tch - sum_t * sum_ch / n) / var_t;
    }
    return e;
  }
};

/// Group indices where `active[i]` is true into [lo, hi] runs, bridging
/// gaps of up to kGroupGap.
std::vector<std::pair<std::size_t, std::size_t>> group_runs(
    const std::vector<bool>& active) {
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  std::size_t i = 0;
  while (i < active.size()) {
    if (!active[i]) {
      ++i;
      continue;
    }
    std::size_t hi = i;
    std::size_t j = i + 1;
    std::size_t gap = 0;
    while (j < active.size() && gap <= kGroupGap) {
      if (active[j]) {
        hi = j;
        gap = 0;
      } else {
        ++gap;
      }
      ++j;
    }
    runs.emplace_back(i, hi);
    i = hi + 1;
  }
  return runs;
}

std::vector<std::size_t> flood(const std::vector<bool>& above,
                               std::vector<bool>& visited, Shape2D shape,
                               std::size_t seed) {
  std::vector<std::size_t> cells;
  std::vector<std::size_t> stack{seed};
  visited[seed] = true;
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    cells.push_back(i);
    const std::size_t r = i / shape.cols;
    const std::size_t c = i % shape.cols;
    for (int dr = -1; dr <= 1; ++dr) {
      for (int dc = -1; dc <= 1; ++dc) {
        if (dr == 0 && dc == 0) continue;
        const std::ptrdiff_t nr = static_cast<std::ptrdiff_t>(r) + dr;
        const std::ptrdiff_t nc = static_cast<std::ptrdiff_t>(c) + dc;
        if (nr < 0 || nc < 0 ||
            nr >= static_cast<std::ptrdiff_t>(shape.rows) ||
            nc >= static_cast<std::ptrdiff_t>(shape.cols)) {
          continue;
        }
        const std::size_t ni = static_cast<std::size_t>(nr) * shape.cols +
                               static_cast<std::size_t>(nc);
        if (above[ni] && !visited[ni]) {
          visited[ni] = true;
          stack.push_back(ni);
        }
      }
    }
  }
  return cells;
}

}  // namespace

std::vector<DetectedEvent> detect_events(const core::Array2D& similarity,
                                         const DetectorParams& params) {
  DASSA_TRACE_SPAN("dsp", "dsp.detect_events");
  const Shape2D shape = similarity.shape;
  DASSA_CHECK(!shape.empty(), "cannot detect events in an empty map");
  DASSA_CHECK(params.noise_floor_multiplier > 1.0,
              "threshold multiplier must exceed 1");

  // The map is mostly noise, so its median IS the noise floor.
  const double floor = dsp::median(similarity.data);
  const double threshold =
      std::max(1e-12, params.noise_floor_multiplier * floor);

  std::vector<bool> above(shape.size());
  for (std::size_t i = 0; i < shape.size(); ++i) {
    above[i] = similarity.data[i] > threshold;
  }

  std::vector<DetectedEvent> events;

  // ---- pass 1: persistent sources (row projection) ---------------------
  std::vector<bool> persistent_row(shape.rows, false);
  for (std::size_t r = 0; r < shape.rows; ++r) {
    std::size_t hits = 0;
    for (std::size_t c = 0; c < shape.cols; ++c) {
      if (above[r * shape.cols + c]) ++hits;
    }
    persistent_row[r] = static_cast<double>(hits) >=
                        params.persistent_time_fraction *
                            static_cast<double>(shape.cols);
  }
  for (const auto& [lo, hi] : group_runs(persistent_row)) {
    if (static_cast<double>(hi - lo + 1) >
        params.persistent_channel_fraction *
            static_cast<double>(shape.rows)) {
      continue;  // too wide to be a stationary source
    }
    Accumulator acc;
    for (std::size_t r = lo; r <= hi; ++r) {
      for (std::size_t c = 0; c < shape.cols; ++c) {
        if (above[r * shape.cols + c]) acc.add(r, c, similarity.at(r, c));
      }
    }
    if (acc.e.cells >= params.min_cells) {
      events.push_back(acc.finish(EventClass::kPersistent));
    }
    // Remove the band from further passes either way.
    for (std::size_t r = lo; r <= hi; ++r) {
      for (std::size_t c = 0; c < shape.cols; ++c) {
        above[r * shape.cols + c] = false;
      }
    }
  }

  // ---- pass 2: earthquakes (column projection) --------------------------
  std::size_t live_rows = 0;
  for (std::size_t r = 0; r < shape.rows; ++r) {
    if (!persistent_row[r]) ++live_rows;
  }
  std::vector<bool> quake_col(shape.cols, false);
  if (live_rows > 0) {
    for (std::size_t c = 0; c < shape.cols; ++c) {
      std::size_t hits = 0;
      for (std::size_t r = 0; r < shape.rows; ++r) {
        if (above[r * shape.cols + c]) ++hits;
      }
      quake_col[c] = static_cast<double>(hits) >=
                     params.quake_channel_fraction *
                         static_cast<double>(live_rows);
    }
  }
  for (const auto& [lo, hi] : group_runs(quake_col)) {
    if (static_cast<double>(hi - lo + 1) >
        params.quake_time_fraction * static_cast<double>(shape.cols)) {
      continue;  // too long-lived for a seismic arrival
    }
    Accumulator acc;
    for (std::size_t c = lo; c <= hi; ++c) {
      for (std::size_t r = 0; r < shape.rows; ++r) {
        if (above[r * shape.cols + c]) acc.add(r, c, similarity.at(r, c));
      }
    }
    if (acc.e.cells >= params.min_cells) {
      events.push_back(acc.finish(EventClass::kEarthquake));
    }
    for (std::size_t c = lo; c <= hi; ++c) {
      for (std::size_t r = 0; r < shape.rows; ++r) {
        above[r * shape.cols + c] = false;
      }
    }
  }

  // ---- pass 3: vehicles / unknown (connected components) ---------------
  std::vector<bool> visited(shape.size(), false);
  for (std::size_t seed = 0; seed < shape.size(); ++seed) {
    if (!above[seed] || visited[seed]) continue;
    const std::vector<std::size_t> cells = flood(above, visited, shape, seed);
    if (cells.size() < params.min_cells) continue;
    Accumulator acc;
    for (const std::size_t i : cells) {
      acc.add(i / shape.cols, i % shape.cols, similarity.data[i]);
    }
    DetectedEvent e = acc.finish(EventClass::kUnknown);
    if (std::abs(e.slope_channels_per_sample) >= params.vehicle_min_slope) {
      e.type = EventClass::kVehicle;
    }
    events.push_back(e);
  }

  std::sort(events.begin(), events.end(),
            [](const DetectedEvent& a, const DetectedEvent& b) {
              return a.cells > b.cells;
            });
  return events;
}

std::string describe(const DetectedEvent& e, double sampling_hz) {
  std::ostringstream os;
  os << event_class_name(e.type) << " ch[" << e.channel_lo << ","
     << e.channel_hi << "] t["
     << static_cast<double>(e.time_lo) / sampling_hz << "s,"
     << static_cast<double>(e.time_hi) / sampling_hz << "s] peak="
     << e.peak_similarity;
  if (e.type == EventClass::kVehicle) {
    os << " speed=" << e.slope_channels_per_sample * sampling_hz
       << " ch/s";
  }
  return os.str();
}

}  // namespace dassa::das
