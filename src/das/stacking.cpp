#include "dassa/das/stacking.hpp"

#include "dassa/common/counters.hpp"
#include "dassa/dsp/correlate.hpp"

namespace dassa::das {

namespace {

std::size_t effective_hop(const StackingParams& p) {
  return p.window_hop == 0 ? p.window_samples : p.window_hop;
}

void validate(const StackingParams& p) {
  DASSA_CHECK(p.window_samples >= 8,
              "stacking windows must hold at least 8 samples");
}

}  // namespace

std::size_t stack_window_count(std::size_t samples,
                               const StackingParams& params) {
  validate(params);
  if (samples < params.window_samples) return 0;
  return (samples - params.window_samples) / effective_hop(params) + 1;
}

std::vector<double> stacked_ncf(std::span<const double> channel,
                                std::span<const double> master,
                                const StackingParams& params) {
  validate(params);
  DASSA_CHECK(channel.size() == master.size(),
              "channel and master must cover the same time range");
  const std::size_t windows =
      stack_window_count(channel.size(), params);
  DASSA_CHECK(windows >= 1, "record shorter than one stacking window");
  const std::size_t hop = effective_hop(params);
  // One filter design for every window of the record, not one per
  // window (the coefficients depend only on the parameters).
  const InterferometryPrep prep = interferometry_prep(params.base);

  std::vector<double> stack;
  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t off = w * hop;
    // Per-window processing + frequency-domain correlation: one NCF per
    // (channel, window) -- the slice of the paper's 3D intermediate.
    const std::vector<dsp::cplx> ch_spec = interferometry_spectrum(
        channel.subspan(off, params.window_samples), params.base, prep);
    const std::vector<dsp::cplx> ms_spec = interferometry_spectrum(
        master.subspan(off, params.window_samples), params.base, prep);
    const std::vector<double> ncf = dsp::xcorr_spectra(ch_spec, ms_spec);
    if (stack.empty()) {
      stack = ncf;
    } else {
      DASSA_CHECK(ncf.size() == stack.size(),
                  "window NCFs differ in length");
      for (std::size_t i = 0; i < ncf.size(); ++i) stack[i] += ncf[i];
    }
  }
  const double scale = 1.0 / static_cast<double>(windows);
  for (double& v : stack) v *= scale;
  return stack;
}

core::RowUdfFactory make_stacking_factory(const StackingParams& params) {
  return [params](const core::RankContext& ctx) -> core::RowUdf {
    const Shape2D global = ctx.block.global_shape;
    DASSA_CHECK(params.base.master_channel < global.rows,
                "master channel outside the array");
    const int size = ctx.comm.size();
    int owner = 0;
    for (int r = 0; r < size; ++r) {
      const Range range =
          even_chunk(global.rows, static_cast<std::size_t>(size),
                     static_cast<std::size_t>(r));
      if (params.base.master_channel >= range.begin &&
          params.base.master_channel < range.end) {
        owner = r;
        break;
      }
    }
    std::vector<double> master_row;
    if (ctx.comm.rank() == owner) {
      const Range mine =
          even_chunk(global.rows, static_cast<std::size_t>(size),
                     static_cast<std::size_t>(owner));
      const std::size_t local_row =
          ctx.block.owned_local.begin +
          (params.base.master_channel - mine.begin);
      const double* row =
          ctx.block.data.data() + local_row * ctx.block.block_shape.cols;
      master_row.assign(row, row + ctx.block.block_shape.cols);
    }
    ctx.comm.bcast(master_row, owner);
    global_counters().add(counters::kMemMasterChannelCopies);

    return [params, master = std::move(master_row)](
               const core::Stencil& s) -> std::vector<double> {
      return stacked_ncf(s.row_span(0), master, params);
    };
  };
}

core::EngineReport stacking_distributed(const core::EngineConfig& config,
                                        const io::Vca& vca,
                                        const StackingParams& params) {
  const std::size_t cols = vca.shape().cols;
  const std::size_t extra_bytes = cols * sizeof(double);
  return core::run_rows(config, vca, make_stacking_factory(params),
                        extra_bytes);
}

}  // namespace dassa::das
