#include "dassa/das/local_similarity.hpp"

#include "dassa/dsp/daslib.hpp"

namespace dassa::das {

core::ScalarUdf make_local_similarity_udf(const LocalSimilarityParams& p) {
  DASSA_CHECK(p.window_half >= 1, "similarity window must hold samples");
  DASSA_CHECK(p.channel_offset >= 1,
              "similarity needs a non-zero channel offset");
  const auto M = static_cast<std::ptrdiff_t>(p.window_half);
  const auto L = static_cast<std::ptrdiff_t>(p.lag_half);
  const auto K = static_cast<std::ptrdiff_t>(p.channel_offset);

  return [M, L, K](const core::Stencil& s) -> double {
    // The full neighbourhood must exist: time span +-(M+L), channels
    // +-K. Edge cells return 0 (no similarity evidence).
    if (!s.in_bounds(-(M + L), -K) || !s.in_bounds(M + L, -K) ||
        !s.in_bounds(-(M + L), +K) || !s.in_bounds(M + L, +K)) {
      return 0.0;
    }
    const std::vector<double> w = s.window(-M, M, 0);
    double c_plus = 0.0;
    double c_minus = 0.0;
    for (std::ptrdiff_t l = -L; l <= L; ++l) {
      const std::vector<double> w1 = s.window(l - M, l + M, +K);
      const std::vector<double> w2 = s.window(l - M, l + M, -K);
      c_plus = std::max(c_plus, daslib::Das_abscorr(w, w1));
      c_minus = std::max(c_minus, daslib::Das_abscorr(w, w2));
    }
    return 0.5 * (c_plus + c_minus);
  };
}

core::Array2D local_similarity(const core::Array2D& data,
                               const LocalSimilarityParams& p, int threads) {
  const core::LocalBlock block = core::LocalBlock::whole(data);
  return core::apply_cells_omp(block, make_local_similarity_udf(p), threads);
}

core::EngineReport local_similarity_distributed(
    core::EngineConfig config, const io::Vca& vca,
    const LocalSimilarityParams& p) {
  config.halo_channels = p.halo();
  return core::run_cells(config, vca,
                         [&p](const core::RankContext&) {
                           return make_local_similarity_udf(p);
                         });
}

}  // namespace dassa::das
