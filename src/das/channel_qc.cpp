#include "dassa/das/channel_qc.hpp"

#include <cmath>

#include "dassa/common/error.hpp"
#include "dassa/dsp/median.hpp"

namespace dassa::das {

const char* channel_status_name(ChannelStatus s) {
  DASSA_CHECK(s == ChannelStatus::kGood || s == ChannelStatus::kDead ||
                  s == ChannelStatus::kNoisy,
              "channel_status_name: value outside the ChannelStatus enum");
  switch (s) {
    case ChannelStatus::kGood:
      return "good";
    case ChannelStatus::kDead:
      return "dead";
    case ChannelStatus::kNoisy:
      return "noisy";
  }
  return "?";
}

ChannelStats channel_stats(std::span<const double> x) {
  DASSA_CHECK(x.empty() || x.data() != nullptr,
              "channel_stats: null span with non-zero size");
  ChannelStats stats;
  if (x.empty()) return stats;
  const double n = static_cast<double>(x.size());
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= n;
  double m2 = 0.0;
  double m4 = 0.0;
  for (double v : x) {
    const double d = v - mean;
    const double d2 = d * d;
    m2 += d2;
    m4 += d2 * d2;
    stats.peak = std::max(stats.peak, std::abs(v));
  }
  m2 /= n;
  m4 /= n;
  stats.rms = std::sqrt(m2 + mean * mean);
  stats.kurtosis = m2 > 1e-300 ? m4 / (m2 * m2) - 3.0 : 0.0;
  return stats;
}

namespace {

ChannelQcReport classify(std::vector<ChannelStats> per_channel,
                         const ChannelQcParams& params) {
  DASSA_CHECK(params.dead_rms_fraction > 0.0 &&
                  params.dead_rms_fraction < 1.0,
              "dead threshold must be a fraction in (0,1)");
  DASSA_CHECK(params.noisy_rms_multiple > 1.0,
              "noisy threshold must exceed 1");
  ChannelQcReport report;
  std::vector<double> rms;
  rms.reserve(per_channel.size());
  for (const auto& c : per_channel) rms.push_back(c.rms);
  report.median_rms = dsp::median(rms);

  for (auto& c : per_channel) {
    if (c.rms < params.dead_rms_fraction * report.median_rms) {
      c.status = ChannelStatus::kDead;
    } else if (c.rms > params.noisy_rms_multiple * report.median_rms) {
      c.status = ChannelStatus::kNoisy;
    } else {
      c.status = ChannelStatus::kGood;
    }
  }
  report.channels = std::move(per_channel);
  return report;
}

core::RowUdf stats_udf() {
  return [](const core::Stencil& s) -> std::vector<double> {
    const ChannelStats stats = channel_stats(s.row_span(0));
    return {stats.rms, stats.peak, stats.kurtosis};
  };
}

ChannelQcReport from_stats_array(const core::Array2D& out,
                                 const ChannelQcParams& params) {
  std::vector<ChannelStats> per_channel(out.shape.rows);
  for (std::size_t ch = 0; ch < out.shape.rows; ++ch) {
    per_channel[ch].rms = out.at(ch, 0);
    per_channel[ch].peak = out.at(ch, 1);
    per_channel[ch].kurtosis = out.at(ch, 2);
  }
  return classify(std::move(per_channel), params);
}

}  // namespace

ChannelQcReport channel_qc(const core::EngineConfig& config,
                           const io::Vca& vca,
                           const ChannelQcParams& params) {
  const core::EngineReport report = core::run_rows(
      config, vca,
      [](const core::RankContext&) { return stats_udf(); });
  DASSA_CHECK(report.output.shape.cols == 3,
              "QC engine output must have 3 stat columns");
  return from_stats_array(report.output, params);
}

ChannelQcReport channel_qc(const core::Array2D& data,
                           const ChannelQcParams& params) {
  const core::Array2D out = core::apply_rows_serial(
      core::LocalBlock::whole(data), stats_udf());
  return from_stats_array(out, params);
}

}  // namespace dassa::das
