#include "dassa/das/time.hpp"

#include <cctype>

#include "dassa/common/error.hpp"

namespace dassa::das {

namespace {

// days_from_civil(2000,1,1): 719468 (1970-01-01) + 10957 days.
constexpr std::int64_t kEpochDays2000 = 730425;

/// Days since 0000-03-01 (Howard Hinnant's days_from_civil).
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe);
}

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t z, int& y, int& m, int& d) {
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  y = static_cast<int>(yy + (m <= 2));
}

int two_digits(const std::string& s, std::size_t pos) {
  return (s[pos] - '0') * 10 + (s[pos + 1] - '0');
}

void append_two(std::string& out, int v) {
  out.push_back(static_cast<char>('0' + v / 10));
  out.push_back(static_cast<char>('0' + v % 10));
}

}  // namespace

Timestamp Timestamp::parse(const std::string& s) {
  DASSA_CHECK(s.size() == 12, "timestamp must be 12 digits (yymmddhhmmss)");
  for (char c : s) {
    DASSA_CHECK(std::isdigit(static_cast<unsigned char>(c)) != 0,
                "timestamp must be numeric: " + s);
  }
  Timestamp t;
  t.year = 2000 + two_digits(s, 0);
  t.month = two_digits(s, 2);
  t.day = two_digits(s, 4);
  t.hour = two_digits(s, 6);
  t.minute = two_digits(s, 8);
  t.second = two_digits(s, 10);
  DASSA_CHECK(t.month >= 1 && t.month <= 12, "bad month in " + s);
  DASSA_CHECK(t.day >= 1 && t.day <= 31, "bad day in " + s);
  DASSA_CHECK(t.hour <= 23 && t.minute <= 59 && t.second <= 59,
              "bad time of day in " + s);
  return t;
}

std::string Timestamp::str() const {
  std::string out;
  out.reserve(12);
  append_two(out, year - 2000);
  append_two(out, month);
  append_two(out, day);
  append_two(out, hour);
  append_two(out, minute);
  append_two(out, second);
  return out;
}

std::int64_t Timestamp::epoch_seconds() const {
  const std::int64_t days =
      days_from_civil(year, month, day) - kEpochDays2000;
  return ((days * 24 + hour) * 60 + minute) * 60 + second;
}

Timestamp Timestamp::plus_seconds(std::int64_t seconds) const {
  std::int64_t total = epoch_seconds() + seconds;
  DASSA_CHECK(total >= 0, "timestamp underflows year 2000");
  Timestamp t;
  t.second = static_cast<int>(total % 60);
  total /= 60;
  t.minute = static_cast<int>(total % 60);
  total /= 60;
  t.hour = static_cast<int>(total % 24);
  total /= 24;
  civil_from_days(total + kEpochDays2000, t.year, t.month, t.day);
  DASSA_CHECK(t.year < 2100, "timestamp overflows two-digit year");
  return t;
}

}  // namespace dassa::das
