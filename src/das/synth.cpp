#include "dassa/das/synth.hpp"

#include <cmath>
#include <filesystem>
#include <numbers>

namespace dassa::das {

namespace {

/// splitmix64 -- counter-based hash used as the noise generator.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Deterministic standard normal for (seed, channel, index) via
/// Box-Muller on two hashed uniforms.
double hashed_gaussian(std::uint64_t seed, std::uint64_t ch,
                       std::uint64_t idx) {
  const std::uint64_t base = splitmix64(seed ^ splitmix64(ch) ^
                                        splitmix64(idx * 0x9E3779B97F4A7C15ull));
  const double u1 = uniform01(splitmix64(base));
  const double u2 = uniform01(splitmix64(base + 1));
  const double r = std::sqrt(-2.0 * std::log(u1 + 1e-300));
  return r * std::cos(2.0 * std::numbers::pi * u2);
}

/// Deterministic per-channel phase in [0, 2 pi).
double hashed_phase(std::uint64_t seed, std::uint64_t ch) {
  return 2.0 * std::numbers::pi * uniform01(splitmix64(seed ^ splitmix64(ch)));
}

}  // namespace

double SynthDas::sample(std::size_t ch, std::uint64_t idx) const {
  const double t = static_cast<double>(idx) / config_.sampling_hz;
  const double chd = static_cast<double>(ch);
  double v = config_.noise_rms * hashed_gaussian(config_.seed, ch, idx);

  for (const auto& veh : vehicles_) {
    const double dt = t - veh.start_s;
    if (dt < 0.0 || dt > veh.duration_s) continue;
    const double pos = veh.start_channel + veh.speed_ch_per_s * dt;
    const double d = (chd - pos) / veh.width_channels;
    if (std::abs(d) > 4.0) continue;
    const double envelope = std::exp(-0.5 * d * d);
    v += veh.amplitude * envelope *
         std::sin(2.0 * std::numbers::pi * veh.freq_hz * t);
  }

  for (const auto& q : quakes_) {
    const double offset_m =
        (chd - q.epicenter_channel) * config_.spatial_resolution_m;
    const double dist_m = std::hypot(q.depth_m, offset_m);
    const double arrival = q.origin_s + dist_m / q.velocity_m_s;
    const double dt = t - arrival;
    if (dt < 0.0 || dt > 8.0 * q.decay_s) continue;
    // Geometric spreading keeps distant channels visible but weaker.
    const double spread = q.depth_m / dist_m;
    v += q.amplitude * spread * std::exp(-dt / q.decay_s) *
         std::sin(2.0 * std::numbers::pi * q.freq_hz * dt);
  }

  for (const auto& s : persistent_) {
    if (chd < s.channel_lo || chd > s.channel_hi) continue;
    v += s.amplitude * std::sin(2.0 * std::numbers::pi * s.freq_hz * t +
                                hashed_phase(config_.seed, 7777));
  }
  return v;
}

core::Array2D SynthDas::render(std::uint64_t first_sample,
                               std::size_t samples) const {
  core::Array2D out(Shape2D{config_.channels, samples});
  for (std::size_t ch = 0; ch < config_.channels; ++ch) {
    double* row = out.row(ch).data();
    for (std::size_t i = 0; i < samples; ++i) {
      row[i] = sample(ch, first_sample + i);
    }
  }
  return out;
}

SynthDas SynthDas::fig1b_scene(std::size_t channels, double sampling_hz,
                               std::uint64_t seed) {
  SynthConfig cfg;
  cfg.channels = channels;
  cfg.sampling_hz = sampling_hz;
  cfg.seed = seed;
  SynthDas synth(cfg);
  const double span = static_cast<double>(channels);
  // Keep every source comfortably inside the band at any sampling rate:
  // use the physical frequency when it fits, otherwise scale with the
  // rate (a 30 Hz source sampled at 20 Hz would alias onto Nyquist and
  // degenerate).
  const auto in_band = [&](double physical_hz, double fraction) {
    return std::min(physical_hz, fraction * sampling_hz);
  };

  // Two vehicles crossing different parts of the array at different
  // speeds (the two slanted lines in Fig. 1b / Fig. 10).
  VehicleEvent car1;
  car1.start_s = 20.0;
  car1.start_channel = 0.05 * span;
  car1.speed_ch_per_s = span / 200.0;
  car1.width_channels = std::max(2.0, span / 40.0);
  car1.freq_hz = in_band(12.0, 0.30);
  car1.amplitude = 5.0;
  synth.add(car1);

  VehicleEvent car2;
  car2.start_s = 120.0;
  car2.start_channel = 0.9 * span;
  car2.speed_ch_per_s = -span / 150.0;
  car2.width_channels = std::max(2.0, span / 40.0);
  car2.freq_hz = in_band(16.0, 0.38);
  car2.amplitude = 4.0;
  synth.add(car2);

  // The M4.4-like event: arrives everywhere within seconds, coherent.
  EarthquakeEvent quake;
  quake.origin_s = 210.0;
  quake.epicenter_channel = 0.55 * span;
  quake.depth_m = 12000.0;
  quake.velocity_m_s = 3500.0;
  quake.freq_hz = in_band(6.0, 0.15);
  quake.decay_s = 4.0;
  quake.amplitude = 12.0;
  synth.add(quake);

  // Persistent vibration near one end of the cable.
  PersistentSource hum;
  hum.channel_lo = 0.78 * span;
  hum.channel_hi = 0.82 * span;
  hum.freq_hz = in_band(30.0, 0.42);
  hum.amplitude = 3.0;
  synth.add(hum);

  return synth;
}

std::string write_acquisition_file(const SynthDas& synth,
                                   const AcquisitionSpec& spec,
                                   std::size_t index) {
  DASSA_CHECK(spec.seconds_per_file > 0.0,
              "seconds_per_file must be positive");
  if (!spec.codec.empty()) {
    DASSA_CHECK(spec.chunk.rows > 0 && spec.chunk.cols > 0,
                "a codec chain requires chunk extents");
  }
  DASSA_CHECK(spec.quantize_lsb >= 0.0, "quantize_lsb must be >= 0");
  std::filesystem::create_directories(spec.dir);

  const SynthConfig& cfg = synth.config();
  const auto samples_per_file = static_cast<std::size_t>(
      spec.seconds_per_file * cfg.sampling_hz + 0.5);
  DASSA_CHECK(samples_per_file >= 1, "file would contain zero samples");

  const Timestamp ts = spec.start.plus_seconds(
      static_cast<std::int64_t>(static_cast<double>(index) *
                                spec.seconds_per_file));
  core::Array2D data =
      synth.render(static_cast<std::uint64_t>(index) * samples_per_file,
                   samples_per_file);
  if (spec.quantize_lsb > 0.0) {
    for (double& v : data.data) {
      v = std::nearbyint(v / spec.quantize_lsb) * spec.quantize_lsb;
    }
  }

  io::Dash5Header header;
  header.shape = data.shape;
  header.dtype = spec.dtype;
  if (spec.chunk.rows > 0 && spec.chunk.cols > 0) {
    header.layout = io::Layout::kChunked;
    header.chunk = spec.chunk;
  }
  header.codec = spec.codec;
  header.global.set_f64(io::meta::kSamplingFrequencyHz, cfg.sampling_hz);
  header.global.set_f64(io::meta::kSpatialResolutionM,
                        cfg.spatial_resolution_m);
  header.global.set(io::meta::kTimeStamp, ts.str());
  header.global.set_i64(io::meta::kNumObjects,
                        static_cast<std::int64_t>(cfg.channels));
  if (spec.per_channel_metadata) {
    header.objects.reserve(cfg.channels);
    for (std::size_t ch = 0; ch < cfg.channels; ++ch) {
      io::ObjectMeta obj;
      obj.path = "/Measurement/" + std::to_string(ch + 1);
      obj.kv.set_i64("Array dimension", 1);
      obj.kv.set_i64("Number of raw data values",
                     static_cast<std::int64_t>(samples_per_file));
      header.objects.push_back(std::move(obj));
    }
  }

  const std::string path = spec.dir + "/" + spec.prefix + "_" + ts.str() +
                           ".dh5";
  io::dash5_write(path, header, data.data);
  return path;
}

std::vector<std::string> write_acquisition(const SynthDas& synth,
                                           const AcquisitionSpec& spec) {
  DASSA_CHECK(spec.file_count >= 1, "acquisition needs at least one file");
  std::vector<std::string> paths;
  paths.reserve(spec.file_count);
  for (std::size_t f = 0; f < spec.file_count; ++f) {
    paths.push_back(write_acquisition_file(synth, spec, f));
  }
  return paths;
}

}  // namespace dassa::das
