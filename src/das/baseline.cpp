#include "dassa/das/baseline.hpp"

#include "dassa/dsp/daslib.hpp"

namespace dassa::das {

namespace {

/// Model MATLAB's pass-by-value call boundary: the callee receives a
/// copy of its argument. Returns the copy and charges the report.
std::vector<double> call_copy(std::span<const double> x,
                              BaselineReport& report) {
  report.bytes_copied += x.size_bytes();
  return {x.begin(), x.end()};
}

}  // namespace

BaselineReport baseline_interferometry(const core::Array2D& data,
                                       const InterferometryParams& p) {
  BaselineReport report;
  const std::size_t rows = data.shape.rows;
  const double nyquist = p.sampling_hz / 2.0;
  const dsp::FilterCoeffs coeffs = daslib::Das_butter_bandpass(
      p.butter_order, p.band_lo_hz / nyquist, p.band_hi_hz / nyquist);

  // Stage 1: detrend the whole array into a fresh temporary.
  core::Array2D detrended(data.shape);
  {
    StageScope scope(report.stages, "compute.detrend");
    for (std::size_t r = 0; r < rows; ++r) {
      const std::vector<double> arg = call_copy(data.row(r), report);
      const std::vector<double> out = daslib::Das_detrend(arg);
      std::copy(out.begin(), out.end(), detrended.row(r).begin());
    }
    ++report.full_array_temporaries;
    report.bytes_copied += detrended.data.size() * sizeof(double);
  }

  // Stage 2: zero-phase bandpass, next temporary.
  core::Array2D filtered(data.shape);
  {
    StageScope scope(report.stages, "compute.filtfilt");
    for (std::size_t r = 0; r < rows; ++r) {
      const std::vector<double> arg = call_copy(detrended.row(r), report);
      const std::vector<double> out = daslib::Das_filtfilt(coeffs, arg);
      std::copy(out.begin(), out.end(), filtered.row(r).begin());
    }
    ++report.full_array_temporaries;
    report.bytes_copied += filtered.data.size() * sizeof(double);
  }

  // Stage 3: resample, next temporary (new width).
  const std::size_t new_cols =
      (data.shape.cols * p.resample_up + p.resample_down - 1) /
      p.resample_down;
  core::Array2D resampled(Shape2D{rows, new_cols});
  {
    StageScope scope(report.stages, "compute.resample");
    for (std::size_t r = 0; r < rows; ++r) {
      const std::vector<double> arg = call_copy(filtered.row(r), report);
      const std::vector<double> out =
          daslib::Das_resample(arg, p.resample_up, p.resample_down);
      std::copy(out.begin(), out.end(), resampled.row(r).begin());
    }
    ++report.full_array_temporaries;
    report.bytes_copied += resampled.data.size() * sizeof(double);
  }

  // Stage 4: FFT of every channel, held as a full complex temporary.
  std::vector<std::vector<dsp::cplx>> spectra(rows);
  {
    StageScope scope(report.stages, "compute.fft");
    for (std::size_t r = 0; r < rows; ++r) {
      const std::vector<double> arg = call_copy(resampled.row(r), report);
      spectra[r] = daslib::Das_fft(arg);
      report.bytes_copied += spectra[r].size() * sizeof(dsp::cplx);
    }
    ++report.full_array_temporaries;
  }

  // Stage 5: correlate every channel spectrum against the master.
  {
    StageScope scope(report.stages, "compute.correlate");
    const std::vector<dsp::cplx>& master = spectra[p.master_channel];
    if (p.full_correlation) {
      report.output = core::Array2D(Shape2D{rows, new_cols});
      for (std::size_t r = 0; r < rows; ++r) {
        const std::vector<double> ncf = dsp::xcorr_spectra(spectra[r], master);
        std::copy(ncf.begin(), ncf.end(), report.output.row(r).begin());
      }
    } else {
      report.output = core::Array2D(Shape2D{rows, 1});
      for (std::size_t r = 0; r < rows; ++r) {
        report.output.at(r, 0) = daslib::Das_abscorr(
            std::span<const dsp::cplx>(spectra[r]),
            std::span<const dsp::cplx>(master));
      }
    }
  }
  return report;
}

BaselineReport dassa_interferometry(const core::Array2D& data,
                                    const InterferometryParams& p,
                                    int threads) {
  BaselineReport report;
  StageScope scope(report.stages, "compute");
  report.output = interferometry_single_node(data, p, threads);
  return report;
}

}  // namespace dassa::das
