#include "dassa/das/interferometry.hpp"

#include "dassa/common/counters.hpp"
#include "dassa/dsp/daslib.hpp"

namespace dassa::das {

namespace {

/// Nyquist-relative band edges, validated against the sampling rate.
std::pair<double, double> band_edges(const InterferometryParams& p) {
  const double nyquist = p.sampling_hz / 2.0;
  DASSA_CHECK(p.band_lo_hz > 0.0 && p.band_hi_hz < nyquist &&
                  p.band_lo_hz < p.band_hi_hz,
              "bandpass edges must satisfy 0 < lo < hi < Nyquist");
  return {p.band_lo_hz / nyquist, p.band_hi_hz / nyquist};
}

}  // namespace

InterferometryPrep interferometry_prep(const InterferometryParams& p) {
  const auto [lo, hi] = band_edges(p);
  return InterferometryPrep{
      daslib::Das_butter_bandpass(p.butter_order, lo, hi)};
}

std::vector<double> interferometry_preprocess(std::span<const double> x,
                                              const InterferometryParams& p) {
  return interferometry_preprocess(x, p, interferometry_prep(p));
}

std::vector<double> interferometry_preprocess(
    std::span<const double> x, const InterferometryParams& p,
    const InterferometryPrep& prep) {
  const std::vector<double> detrended = daslib::Das_detrend(x);
  const std::vector<double> filtered =
      daslib::Das_filtfilt(prep.bandpass, detrended);
  return daslib::Das_resample(filtered, p.resample_up, p.resample_down);
}

std::vector<dsp::cplx> interferometry_spectrum(std::span<const double> x,
                                               const InterferometryParams& p) {
  return daslib::Das_fft(interferometry_preprocess(x, p));
}

std::vector<dsp::cplx> interferometry_spectrum(
    std::span<const double> x, const InterferometryParams& p,
    const InterferometryPrep& prep) {
  return daslib::Das_fft(interferometry_preprocess(x, p, prep));
}

core::RowUdf make_interferometry_udf(const InterferometryParams& p,
                                     std::vector<dsp::cplx> master_spectrum) {
  // Design the bandpass once here: the UDF runs per channel, and
  // redesigning identical coefficients ~10^4 times dominated the row
  // loop's setup cost before the hoist.
  return [p, prep = interferometry_prep(p),
          master = std::move(master_spectrum)](
             const core::Stencil& s) -> std::vector<double> {
    const std::vector<dsp::cplx> w_fft =
        interferometry_spectrum(s.row_span(0), p, prep);
    DASSA_CHECK(w_fft.size() == master.size(),
                "channel and master spectra differ in length");
    if (p.full_correlation) {
      return dsp::xcorr_spectra(w_fft, master);
    }
    return {daslib::Das_abscorr(std::span<const dsp::cplx>(w_fft),
                                std::span<const dsp::cplx>(master))};
  };
}

core::RowUdfFactory make_interferometry_factory(
    const InterferometryParams& p) {
  return [p](const core::RankContext& ctx) -> core::RowUdf {
    // Locate the rank that owns the master channel and broadcast the
    // raw master row to everyone. Every rank then computes and holds
    // its *own copy* of the master spectrum -- one copy per rank, i.e.
    // one per node under HAEE and cores_per_node per node under
    // MPI-per-core ArrayUDF. The counter records the duplication.
    const Shape2D global = ctx.block.global_shape;
    DASSA_CHECK(p.master_channel < global.rows,
                "master channel outside the array");
    const int size = ctx.comm.size();
    int owner = 0;
    for (int r = 0; r < size; ++r) {
      const Range range = even_chunk(global.rows,
                                     static_cast<std::size_t>(size),
                                     static_cast<std::size_t>(r));
      if (p.master_channel >= range.begin && p.master_channel < range.end) {
        owner = r;
        break;
      }
    }

    std::vector<double> master_row;
    if (ctx.comm.rank() == owner) {
      const Range mine = even_chunk(global.rows,
                                    static_cast<std::size_t>(size),
                                    static_cast<std::size_t>(owner));
      const std::size_t local_row =
          ctx.block.owned_local.begin + (p.master_channel - mine.begin);
      const double* row = ctx.block.data.data() +
                          local_row * ctx.block.block_shape.cols;
      master_row.assign(row, row + ctx.block.block_shape.cols);
    }
    ctx.comm.bcast(master_row, owner);

    global_counters().add(counters::kMemMasterChannelCopies);
    return make_interferometry_udf(
        p, interferometry_spectrum(master_row, p));
  };
}

core::Array2D interferometry_single_node(const core::Array2D& data,
                                         const InterferometryParams& p,
                                         int threads) {
  DASSA_CHECK(p.master_channel < data.shape.rows,
              "master channel outside the array");
  global_counters().add(counters::kMemMasterChannelCopies);
  const core::RowUdf udf = make_interferometry_udf(
      p, interferometry_spectrum(data.row(p.master_channel), p));
  return core::apply_rows_omp(core::LocalBlock::whole(data), udf, threads);
}

core::EngineReport interferometry_distributed(const core::EngineConfig& config,
                                              const io::Vca& vca,
                                              const InterferometryParams& p) {
  // Memory model: each rank duplicates the master row + its spectrum.
  const std::size_t cols = vca.shape().cols;
  const std::size_t resampled =
      (cols * p.resample_up + p.resample_down - 1) / p.resample_down;
  const std::size_t extra_bytes =
      cols * sizeof(double) + resampled * sizeof(dsp::cplx);
  return core::run_rows(config, vca, make_interferometry_factory(p),
                        extra_bytes);
}

}  // namespace dassa::das
