#include "dassa/common/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <ostream>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/sync.hpp"
#include "json.hpp"

namespace dassa::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<std::int64_t> g_open_spans{0};
}  // namespace detail

namespace {

// Cumulative tracer statistics (survive clear(), published idempotently
// via high_water like the dsp stats).
std::atomic<std::uint64_t> g_spans_emitted{0};
std::atomic<std::uint64_t> g_spans_dropped{0};

struct SpanRecord {
  const char* name;
  const char* cat;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// One thread's span ring. The vector is reserved once at creation and
/// never reallocates: push until full, then drop-newest (dropping the
/// oldest would orphan enclosing spans and unbalance the exported
/// begin/end pairs). Guarded by `mu` so collect() from another thread
/// is race-free; the lock is uncontended on the emit path except while
/// a collection is in flight.
struct ThreadBuffer {
  Mutex mu;
  std::vector<SpanRecord> spans DASSA_GUARDED_BY(mu);
  std::size_t capacity DASSA_GUARDED_BY(mu) = 0;
  std::uint64_t dropped DASSA_GUARDED_BY(mu) = 0;
  std::uint32_t tid DASSA_GUARDED_BY(mu) = 0;
  int rank DASSA_GUARDED_BY(mu) = -1;
  bool detached DASSA_GUARDED_BY(mu) = false;  ///< owning thread has exited
};

struct Registry {
  Mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers DASSA_GUARDED_BY(mu);
  std::uint32_t next_tid DASSA_GUARDED_BY(mu) = 1;
  std::uint32_t threads_seen DASSA_GUARDED_BY(mu) = 0;
  std::size_t ring_capacity DASSA_GUARDED_BY(mu) = kDefaultRingCapacity;
};

Registry& registry() {
  static Registry reg;
  return reg;
}

thread_local int t_rank = -1;

/// Marks the buffer detached at thread exit so clear() can release it.
struct BufferHolder {
  std::shared_ptr<ThreadBuffer> buf;
  ~BufferHolder() {
    if (buf) {
      MutexLock lock(buf->mu);
      buf->detached = true;
    }
  }
};
thread_local BufferHolder t_holder;

ThreadBuffer& local_buffer() {
  if (!t_holder.buf) {
    auto buf = std::make_shared<ThreadBuffer>();
    Registry& reg = registry();
    MutexLock lock(reg.mu);
    {
      // The buffer is not yet published; the lock exists to satisfy the
      // capability analysis and is uncontended. reg.mu -> buf->mu is
      // the same acquisition order clear() uses.
      MutexLock buf_lock(buf->mu);
      buf->tid = reg.next_tid++;
      ++reg.threads_seen;
      buf->capacity = reg.ring_capacity;
      buf->spans.reserve(buf->capacity);
      buf->rank = t_rank;
    }
    reg.buffers.push_back(buf);
    t_holder.buf = std::move(buf);
  }
  return *t_holder.buf;
}

void json_escape(std::ostream& os, const char* s) {
  std::string out;
  jsonio::escape(out, s);
  os << out;
}

}  // namespace

namespace detail {

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

void emit_span(const char* cat, const char* name, std::uint64_t start_ns,
               std::uint64_t end_ns) {
  DASSA_CHECK(cat != nullptr && name != nullptr,
              "trace span category and name must be string literals");
  const std::uint64_t dur = end_ns >= start_ns ? end_ns - start_ns : 0;
  ThreadBuffer& buf = local_buffer();
  {
    MutexLock lock(buf.mu);
    if (buf.spans.size() < buf.capacity) {
      buf.spans.push_back(SpanRecord{name, cat, start_ns, dur});
    } else {
      ++buf.dropped;
      g_spans_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  g_spans_emitted.fetch_add(1, std::memory_order_relaxed);
  global_metrics().histogram(name).record_ns(dur);
}

}  // namespace detail

void set_enabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

void set_thread_rank(int rank) {
  DASSA_CHECK(rank >= -1, "trace thread rank must be >= -1");
  t_rank = rank;
  if (t_holder.buf) {
    MutexLock lock(t_holder.buf->mu);
    t_holder.buf->rank = rank;
  }
}

int thread_rank() { return t_rank; }

void set_ring_capacity(std::size_t spans) {
  DASSA_CHECK(spans > 0, "trace ring capacity must be positive");
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  reg.ring_capacity = spans;
}

std::vector<TraceEvent> collect() {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    Registry& reg = registry();
    MutexLock lock(reg.mu);
    bufs = reg.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : bufs) {
    MutexLock lock(buf->mu);
    out.reserve(out.size() + buf->spans.size());
    for (const SpanRecord& s : buf->spans) {
      out.push_back(
          TraceEvent{s.name, s.cat, s.start_ns, s.dur_ns, buf->rank,
                     buf->tid});
    }
  }
  // One ordered trace: lanes grouped by (rank, tid), spans by start
  // time; at equal starts the longer (enclosing) span first, so the
  // order is already the begin-order chrome expects.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;
            });
  return out;
}

void clear() {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  for (const auto& buf : reg.buffers) {
    MutexLock buf_lock(buf->mu);
    buf->spans.clear();  // keeps capacity: still zero-alloc afterwards
    buf->dropped = 0;
  }
  std::erase_if(reg.buffers, [](const std::shared_ptr<ThreadBuffer>& b) {
    MutexLock buf_lock(b->mu);
    return b->detached;
  });
}

std::uint64_t dropped_spans() {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  std::uint64_t total = 0;
  for (const auto& buf : reg.buffers) {
    MutexLock buf_lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

void publish_trace_counters() {
  auto& reg = global_counters();
  reg.high_water(counters::kTraceSpansEmitted,
                 g_spans_emitted.load(std::memory_order_relaxed));
  reg.high_water(counters::kTraceSpansDropped,
                 g_spans_dropped.load(std::memory_order_relaxed));
  std::uint32_t threads = 0;
  {
    Registry& r = registry();
    MutexLock lock(r.mu);
    threads = r.threads_seen;
  }
  reg.high_water(counters::kTraceThreads, threads);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events) {
  DASSA_CHECK(os.good(), "chrome-trace output stream is not writable");
  std::vector<TraceEvent> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;
            });

  const auto fmt_ts = [&os](std::uint64_t ns) {
    // Microseconds with nanosecond precision, as chrome expects.
    os << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
       << static_cast<char>('0' + (ns % 100) / 10)
       << static_cast<char>('0' + ns % 10);
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Process-name metadata: one lane per rank (pid = rank + 1; pid 0
  // holds threads that ran outside any MiniMPI rank).
  std::map<int, bool> ranks;
  for (const TraceEvent& e : sorted) ranks[e.rank] = true;
  for (const auto& [rank, _] : ranks) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << rank + 1
       << ",\"tid\":0,\"args\":{\"name\":\""
       << (rank < 0 ? std::string("unranked")
                    : "rank " + std::to_string(rank))
       << "\"}}";
  }

  const auto emit_mark = [&](char ph, const TraceEvent& e,
                             std::uint64_t ts_ns) {
    sep();
    os << "{\"name\":";
    json_escape(os, e.name);
    os << ",\"cat\":";
    json_escape(os, e.cat);
    os << ",\"ph\":\"" << ph << "\",\"ts\":";
    fmt_ts(ts_ns);
    os << ",\"pid\":" << e.rank + 1 << ",\"tid\":" << e.tid << "}";
  };

  // Per-lane sweep: scoped spans from one thread form a laminar family
  // (each pair either nests or is disjoint), so before opening the
  // next span we close every open span of an earlier lane, and every
  // same-lane span that already ended. Stack ends are non-increasing
  // toward the top, so each lane's timestamps stay non-decreasing and
  // every pair balances.
  std::vector<const TraceEvent*> stack;
  for (const TraceEvent& e : sorted) {
    while (!stack.empty()) {
      const TraceEvent* top = stack.back();
      const bool same_lane = top->rank == e.rank && top->tid == e.tid;
      const std::uint64_t end = top->start_ns + top->dur_ns;
      if (same_lane && end > e.start_ns) break;  // e nests inside top
      emit_mark('E', *top, end);
      stack.pop_back();
    }
    emit_mark('B', e, e.start_ns);
    stack.push_back(&e);
  }
  while (!stack.empty()) {
    const TraceEvent* top = stack.back();
    emit_mark('E', *top, top->start_ns + top->dur_ns);
    stack.pop_back();
  }
  os << "\n]}\n";
}

void write_summary(std::ostream& os, const std::vector<TraceEvent>& events) {
  struct Agg {
    const char* cat = "";
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::vector<std::uint64_t> durs;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : events) {
    DASSA_CHECK(e.name != nullptr && e.cat != nullptr,
                "trace events must carry name and category");
    Agg& a = by_name[e.name];
    a.cat = e.cat;
    ++a.count;
    a.total_ns += e.dur_ns;
    a.durs.push_back(e.dur_ns);
  }

  std::vector<std::pair<std::string, Agg*>> rows;
  rows.reserve(by_name.size());
  for (auto& [name, agg] : by_name) rows.emplace_back(name, &agg);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second->total_ns > b.second->total_ns;
  });

  const std::map<std::string, HistogramSnapshot> hists =
      global_metrics().snapshot();
  const auto quantile_us = [&](const std::string& name, Agg& agg,
                               double q) -> double {
    // Prefer the exact collected durations; the histogram covers spans
    // whose ring entries were dropped.
    if (!agg.durs.empty()) {
      std::sort(agg.durs.begin(), agg.durs.end());
      const double pos = q * static_cast<double>(agg.durs.size() - 1);
      const auto lo = static_cast<std::size_t>(pos);
      const std::size_t hi = std::min(lo + 1, agg.durs.size() - 1);
      const double frac = pos - static_cast<double>(lo);
      return (static_cast<double>(agg.durs[lo]) * (1.0 - frac) +
              static_cast<double>(agg.durs[hi]) * frac) /
             1000.0;
    }
    const auto it = hists.find(name);
    return it == hists.end() ? 0.0 : it->second.quantile_ns(q) / 1000.0;
  };

  os << "span                                  cat        count"
     << "   total_ms     p50_us     p95_us     p99_us\n";
  const auto pad = [&os](const std::string& s, std::size_t w) {
    os << s;
    for (std::size_t i = s.size(); i < w; ++i) os << ' ';
  };
  const auto num = [&os](double v, int width) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%*.3f", width, v);
    os << buf;
  };
  for (auto& [name, agg] : rows) {
    pad(name, 38);
    pad(agg->cat, 9);
    char cnt[16];
    std::snprintf(cnt, sizeof cnt, "%7llu",
                  static_cast<unsigned long long>(agg->count));
    os << cnt;
    num(static_cast<double>(agg->total_ns) / 1e6, 11);
    num(quantile_us(name, *agg, 0.50), 11);
    num(quantile_us(name, *agg, 0.95), 11);
    num(quantile_us(name, *agg, 0.99), 11);
    os << "\n";
  }
  if (const std::uint64_t dropped = dropped_spans(); dropped > 0) {
    os << "(" << dropped << " span(s) dropped: ring full)\n";
  }
}

// ---------------------------------------------------------------------------
// chrome-trace parsing + validation (das_trace, schema tests)
// ---------------------------------------------------------------------------

namespace {

using JsonReader = jsonio::JsonReader;

const JsonReader::Value& require(const JsonReader::Value& event,
                                 const std::string& key,
                                 JsonReader::Value::Type type,
                                 std::size_t index) {
  const JsonReader::Value* v = event.find(key);
  if (v == nullptr || v->type != type) {
    throw FormatError("trace event " + std::to_string(index) +
                      " is missing required field '" + key + "'");
  }
  return *v;
}

}  // namespace

std::vector<ChromeEvent> parse_chrome_trace(const std::string& json) {
  DASSA_CHECK(!json.empty(), "empty chrome-trace document");
  JsonReader::Value root = JsonReader(json).parse();

  const JsonReader::Value* list = nullptr;
  if (root.type == JsonReader::Value::Type::kArray) {
    list = &root;
  } else if (root.type == JsonReader::Value::Type::kObject) {
    list = root.find("traceEvents");
  }
  if (list == nullptr || list->type != JsonReader::Value::Type::kArray) {
    throw FormatError("chrome-trace document has no traceEvents array");
  }

  using VT = JsonReader::Value::Type;
  std::vector<ChromeEvent> out;
  out.reserve(list->arr.size());
  for (std::size_t i = 0; i < list->arr.size(); ++i) {
    const JsonReader::Value& ev = list->arr[i];
    if (ev.type != VT::kObject) {
      throw FormatError("trace event " + std::to_string(i) +
                        " is not an object");
    }
    ChromeEvent ce;
    ce.name = require(ev, "name", VT::kString, i).str;
    ce.ph = require(ev, "ph", VT::kString, i).str;
    ce.pid = static_cast<long long>(require(ev, "pid", VT::kNumber, i).number);
    if (ce.ph == "B" || ce.ph == "E") {
      ce.cat = require(ev, "cat", VT::kString, i).str;
      ce.ts_us = require(ev, "ts", VT::kNumber, i).number;
      ce.tid =
          static_cast<long long>(require(ev, "tid", VT::kNumber, i).number);
    } else if (const JsonReader::Value* tid = ev.find("tid");
               tid != nullptr && tid->type == VT::kNumber) {
      ce.tid = static_cast<long long>(tid->number);
    }
    out.push_back(std::move(ce));
  }
  return out;
}

void validate_chrome_trace(const std::vector<ChromeEvent>& events) {
  DASSA_CHECK(!events.empty(), "empty chrome-trace event list");
  struct Lane {
    std::vector<const ChromeEvent*> stack;
    double last_ts = -1.0;
  };
  std::map<std::pair<long long, long long>, Lane> lanes;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ChromeEvent& e = events[i];
    if (e.ph == "M") continue;
    if (e.ph != "B" && e.ph != "E") {
      throw FormatError("trace event " + std::to_string(i) +
                        " has unsupported phase '" + e.ph + "'");
    }
    Lane& lane = lanes[{e.pid, e.tid}];
    if (e.ts_us < lane.last_ts) {
      throw FormatError("trace event " + std::to_string(i) + " ('" + e.name +
                        "') goes backwards in time on lane pid=" +
                        std::to_string(e.pid) +
                        " tid=" + std::to_string(e.tid));
    }
    lane.last_ts = e.ts_us;
    if (e.ph == "B") {
      lane.stack.push_back(&e);
    } else {
      if (lane.stack.empty()) {
        throw FormatError("trace event " + std::to_string(i) + " ('" +
                          e.name + "') ends a span that never began");
      }
      if (lane.stack.back()->name != e.name) {
        throw FormatError("trace event " + std::to_string(i) + " ends '" +
                          e.name + "' but '" + lane.stack.back()->name +
                          "' is open");
      }
      lane.stack.pop_back();
    }
  }
  for (const auto& [key, lane] : lanes) {
    if (!lane.stack.empty()) {
      throw FormatError("lane pid=" + std::to_string(key.first) +
                        " tid=" + std::to_string(key.second) + " leaves '" +
                        std::string(lane.stack.back()->name) +
                        "' unclosed");
    }
  }
}

}  // namespace dassa::trace
