// SIMD kernel implementations + runtime dispatch. The only translation
// unit in DASSA allowed to contain vector intrinsics (das_lint bans
// them elsewhere).
//
// Layout: a `scalar` namespace with the reference implementation of
// every kernel, a portable `wide` namespace with word-at-a-time
// variants (plain C++, no intrinsics — shared by every non-scalar
// level), and per-ISA namespaces (`sse2`, `avx2`, `neon`) for the
// kernels where real vector registers pay: the byte-plane transposes
// and the delta/zigzag lane loops. AVX2 code uses function target
// attributes instead of per-file flags so the rest of the file cannot
// silently auto-vectorize beyond the baseline ISA.
#include "dassa/common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#define DASSA_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define DASSA_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace dassa::simd {

namespace {

std::uint32_t load_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t load_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

void store_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, sizeof v); }
void store_u64(std::byte* p, std::uint64_t v) { std::memcpy(p, &v, sizeof v); }

// ---- scalar reference implementations --------------------------------

namespace scalar {

void shuffle(const std::byte* in, std::byte* out, std::size_t n,
             std::size_t es, std::size_t e0) {
  for (std::size_t p = 0; p < es; ++p) {
    std::byte* dst = out + p * n;
    const std::byte* src = in + p;
    for (std::size_t e = e0; e < n; ++e) dst[e] = src[e * es];
  }
}

void unshuffle(const std::byte* in, std::byte* out, std::size_t n,
               std::size_t es, std::size_t e0) {
  for (std::size_t p = 0; p < es; ++p) {
    const std::byte* src = in + p * n;
    std::byte* dst = out + p;
    for (std::size_t e = e0; e < n; ++e) dst[e * es] = src[e];
  }
}

void delta_zigzag_w4(const std::byte* in, std::byte* out, std::size_t n) {
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = load_u32(in + i * 4);
    const std::uint32_t d = v - prev;
    store_u32(out + i * 4, (d << 1) ^ (std::uint32_t{0} - (d >> 31)));
    prev = v;
  }
}

void delta_zigzag_w8(const std::byte* in, std::byte* out, std::size_t n) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = load_u64(in + i * 8);
    const std::uint64_t d = v - prev;
    store_u64(out + i * 8, (d << 1) ^ (std::uint64_t{0} - (d >> 63)));
    prev = v;
  }
}

void unzigzag_prefix_w4(std::byte* buf, std::size_t n) {
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t zz = load_u32(buf + i * 4);
    prev += (zz >> 1) ^ (std::uint32_t{0} - (zz & 1));
    store_u32(buf + i * 4, prev);
  }
}

void unzigzag_prefix_w8(std::byte* buf, std::size_t n) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t zz = load_u64(buf + i * 8);
    prev += (zz >> 1) ^ (std::uint64_t{0} - (zz & 1));
    store_u64(buf + i * 8, prev);
  }
}

std::size_t varint_encode_w4(const std::byte* lanes, std::size_t n,
                             std::byte* out) {
  std::byte* o = out;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t v = load_u32(lanes + i * 4);
    while (v >= 0x80) {
      *o++ = static_cast<std::byte>((v & 0x7F) | 0x80);
      v >>= 7;
    }
    *o++ = static_cast<std::byte>(v);
  }
  return static_cast<std::size_t>(o - out);
}

std::size_t varint_encode_w8(const std::byte* lanes, std::size_t n,
                             std::byte* out) {
  std::byte* o = out;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = load_u64(lanes + i * 8);
    while (v >= 0x80) {
      *o++ = static_cast<std::byte>((v & 0x7F) | 0x80);
      v >>= 7;
    }
    *o++ = static_cast<std::byte>(v);
  }
  return static_cast<std::size_t>(o - out);
}

/// One bounds-checked 32-bit LEB128 varint; shared slow lane of every
/// w4 decode variant so the error surface is identical across levels.
VarintStatus decode_one_w4(const std::byte* in, std::size_t in_size,
                           std::size_t& pos, std::uint32_t& out) {
  std::uint32_t v = 0;
  for (std::size_t shift = 0;; shift += 7) {
    if (pos >= in_size) return VarintStatus::kTruncated;
    const auto b = static_cast<std::uint32_t>(in[pos++]);
    if (shift == 28 && (b & 0xF0) != 0) return VarintStatus::kOverlong;
    v |= (b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    if (shift == 28) return VarintStatus::kOverlong;
  }
  out = v;
  return VarintStatus::kOk;
}

/// 64-bit flavour; the shift == 63 checks mirror the historical delta
/// stage reader exactly (reject a 10th byte carrying anything above
/// bit 63, and runs that never terminate).
VarintStatus decode_one_w8(const std::byte* in, std::size_t in_size,
                           std::size_t& pos, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (std::size_t shift = 0; shift < 64; shift += 7) {
    if (pos >= in_size) return VarintStatus::kTruncated;
    const auto b = static_cast<std::uint64_t>(in[pos++]);
    if (shift == 63 && (b & 0xFE) != 0) return VarintStatus::kOverlong;
    v |= (b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      out = v;
      return VarintStatus::kOk;
    }
  }
  return VarintStatus::kOverlong;
}

VarintResult varint_decode_w4(const std::byte* in, std::size_t in_size,
                              std::byte* lanes, std::size_t n) {
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t v = 0;
    const VarintStatus st = decode_one_w4(in, in_size, pos, v);
    if (st != VarintStatus::kOk) return {st, pos};
    store_u32(lanes + i * 4, v);
  }
  return {VarintStatus::kOk, pos};
}

VarintResult varint_decode_w8(const std::byte* in, std::size_t in_size,
                              std::byte* lanes, std::size_t n) {
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    const VarintStatus st = decode_one_w8(in, in_size, pos, v);
    if (st != VarintStatus::kOk) return {st, pos};
    store_u64(lanes + i * 8, v);
  }
  return {VarintStatus::kOk, pos};
}

std::size_t match_length(const std::byte* a, const std::byte* b,
                         std::size_t max) {
  std::size_t k = 0;
  while (k < max && a[k] == b[k]) ++k;
  return k;
}

void copy_match(std::byte* dst, std::size_t dist, std::size_t n) {
  const std::byte* src = dst - dist;
  for (std::size_t k = 0; k < n; ++k) dst[k] = src[k];
}

}  // namespace scalar

// ---- portable word-at-a-time variants (no intrinsics) ----------------

namespace wide {

constexpr std::uint64_t kHighBits = 0x8080808080808080ULL;

// Per-length masks/continuation bits for word-at-a-time LEB128.
// kLenMask[len] keeps the low `len` bytes; kContBits[len] sets the
// continuation bit on bytes 0..len-2.
constexpr std::uint64_t kLenMask[9] = {
    0,
    0xFFULL,
    0xFFFFULL,
    0xFFFFFFULL,
    0xFFFFFFFFULL,
    0xFFFFFFFFFFULL,
    0xFFFFFFFFFFFFULL,
    0xFFFFFFFFFFFFFFULL,
    ~std::uint64_t{0},
};
constexpr std::uint64_t kContBits[9] = {
    0,       0,         0x80,         0x8080,         0x808080,
    0x80808080, 0x8080808080, 0x808080808080, 0x80808080808080,
};

/// Fast paths: a whole word of terminator bytes (< 0x80) is 8 complete
/// varints, spread straight into the lanes; otherwise one varint is
/// decoded branchlessly from a single u64 load (terminator located via
/// ctz on the inverted continuation bits). Streams whose tail is
/// within 8 bytes of the end fall back to the shared scalar lane
/// decoder, so truncation/overlong validation is identical.
///
/// Overlong detection is *deferred*: the hot loop only accumulates a
/// flag (a data-dependent branch here mispredicts constantly on real
/// delta streams, where 4- and 5-byte varints interleave ~50/50) and a
/// set flag re-runs the whole stream through the scalar decoder for
/// the exact status and position. Valid input pays nothing; hostile
/// input pays one extra linear pass.
VarintResult varint_decode_w4(const std::byte* in, std::size_t in_size,
                              std::byte* lanes, std::size_t n) {
  std::size_t pos = 0;
  std::size_t i = 0;
  std::uint64_t bad = 0;
  while (i < n && pos + 8 <= in_size) {
    const std::uint64_t word = load_u64(in + pos);
    if ((word & kHighBits) == 0 && i + 8 <= n) {
      for (std::size_t k = 0; k < 8; ++k) {
        store_u32(lanes + (i + k) * 4,
                  static_cast<std::uint32_t>((word >> (8 * k)) & 0x7F));
      }
      pos += 8;
      i += 8;
      continue;
    }
    const std::uint64_t stops = ~word & kHighBits;
    // The OR-ed sentinel keeps ctz defined when stops == 0 (an 8+ byte
    // varint); it yields len == 8, which the len > 5 flag catches.
    const std::size_t len = static_cast<std::size_t>(__builtin_ctzll(
                                stops | 0x8000000000000000ULL)) /
                                8 +
                            1;
    const std::uint64_t w = word & kLenMask[len];
    // Bits 34..38 of the masked word are byte 4's payload bits 2..6;
    // any of them set means the value needs > 32 bits. Only a 5+ byte
    // varint can have byte 4 nonzero after masking, so this one test
    // also covers the "5-byte varint with spare high bits" case.
    bad |= static_cast<std::uint64_t>(len > 5) | (w & 0x7000000000ULL);
    const std::uint64_t v = (w & 0x7F) | ((w >> 8) & 0x7F) << 7 |
                            ((w >> 16) & 0x7F) << 14 |
                            ((w >> 24) & 0x7F) << 21 |
                            ((w >> 32) & 0x7F) << 28;
    store_u32(lanes + i * 4, static_cast<std::uint32_t>(v));
    pos += len;
    ++i;
  }
  if (bad != 0) {
    // Some varint was overlong; everything after it (lanes, pos) is
    // garbage. Re-decode serially for the precise error report.
    return scalar::varint_decode_w4(in, in_size, lanes, n);
  }
  for (; i < n; ++i) {
    std::uint32_t v = 0;
    const VarintStatus st = scalar::decode_one_w4(in, in_size, pos, v);
    if (st != VarintStatus::kOk) return {st, pos};
    store_u32(lanes + i * 4, v);
  }
  return {VarintStatus::kOk, pos};
}

VarintResult varint_decode_w8(const std::byte* in, std::size_t in_size,
                              std::byte* lanes, std::size_t n) {
  std::size_t pos = 0;
  std::size_t i = 0;
  while (i < n && pos + 8 <= in_size) {
    const std::uint64_t word = load_u64(in + pos);
    if ((word & kHighBits) == 0 && i + 8 <= n) {
      for (std::size_t k = 0; k < 8; ++k) {
        store_u64(lanes + (i + k) * 8, (word >> (8 * k)) & 0x7F);
      }
      pos += 8;
      i += 8;
      continue;
    }
    const std::uint64_t stops = ~word & kHighBits;
    if (stops == 0) {
      // 9- or 10-byte varint: rare, take the validating scalar path.
      std::uint64_t v = 0;
      const VarintStatus st = scalar::decode_one_w8(in, in_size, pos, v);
      if (st != VarintStatus::kOk) return {st, pos};
      store_u64(lanes + i * 8, v);
      ++i;
      continue;
    }
    const std::size_t len =
        static_cast<std::size_t>(__builtin_ctzll(stops)) / 8 + 1;
    const std::uint64_t w = word & kLenMask[len];
    // <= 8 bytes carry <= 56 payload bits: never overlong for u64.
    const std::uint64_t v = (w & 0x7F) | ((w >> 8) & 0x7F) << 7 |
                            ((w >> 16) & 0x7F) << 14 |
                            ((w >> 24) & 0x7F) << 21 |
                            ((w >> 32) & 0x7F) << 28 |
                            ((w >> 40) & 0x7F) << 35 |
                            ((w >> 48) & 0x7F) << 42 |
                            ((w >> 56) & 0x7F) << 49;
    store_u64(lanes + i * 8, v);
    pos += len;
    ++i;
  }
  for (; i < n; ++i) {
    std::uint64_t v = 0;
    const VarintStatus st = scalar::decode_one_w8(in, in_size, pos, v);
    if (st != VarintStatus::kOk) return {st, pos};
    store_u64(lanes + i * 8, v);
  }
  return {VarintStatus::kOk, pos};
}

std::size_t varint_encode_w4(const std::byte* lanes, std::size_t n,
                             std::byte* out) {
  std::byte* o = out;
  std::size_t i = 0;
  while (i + 8 <= n) {
    // 8 lanes all < 0x80 emit exactly their low bytes.
    std::uint64_t ored = 0;
    std::uint64_t packed = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      const std::uint64_t v = load_u32(lanes + (i + k) * 4);
      ored |= v;
      packed |= (v & 0xFF) << (8 * k);
    }
    if (ored < 0x80) {
      store_u64(o, packed);
      o += 8;
      i += 8;
      continue;
    }
    // Branchless per lane: spread the value into 7-bit byte groups,
    // OR in the continuation bits for its encoded length, store the
    // whole word (kVarintPad slack absorbs the overshoot) and advance
    // by the true length.
    for (std::size_t k = 0; k < 8; ++k) {
      const std::uint32_t v = load_u32(lanes + (i + k) * 4);
      const std::uint64_t x =
          (v & 0x7F) | static_cast<std::uint64_t>(v & 0x3F80) << 1 |
          static_cast<std::uint64_t>(v & 0x1FC000) << 2 |
          static_cast<std::uint64_t>(v & 0xFE00000) << 3 |
          static_cast<std::uint64_t>(v >> 28) << 32;
      const int nbits = 32 - __builtin_clz(v | 1);
      const std::size_t len = static_cast<std::size_t>(nbits + 6) / 7;
      store_u64(o, x | kContBits[len]);
      o += len;
    }
    i += 8;
  }
  o += scalar::varint_encode_w4(lanes + i * 4, n - i, o);
  return static_cast<std::size_t>(o - out);
}

std::size_t varint_encode_w8(const std::byte* lanes, std::size_t n,
                             std::byte* out) {
  std::byte* o = out;
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t ored = 0;
    std::uint64_t packed = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      const std::uint64_t v = load_u64(lanes + (i + k) * 8);
      ored |= v;
      packed |= (v & 0xFF) << (8 * k);
    }
    if (ored < 0x80) {
      store_u64(o, packed);
      o += 8;
      i += 8;
      continue;
    }
    for (std::size_t k = 0; k < 8; ++k) {
      const std::uint64_t v = load_u64(lanes + (i + k) * 8);
      if (v < (std::uint64_t{1} << 56)) {
        // <= 8 encoded bytes: branchless spread + one word store.
        const std::uint64_t x =
            (v & 0x7F) | (v & (0x7FULL << 7)) << 1 |
            (v & (0x7FULL << 14)) << 2 | (v & (0x7FULL << 21)) << 3 |
            (v & (0x7FULL << 28)) << 4 | (v & (0x7FULL << 35)) << 5 |
            (v & (0x7FULL << 42)) << 6 | (v & (0x7FULL << 49)) << 7;
        const int nbits = 64 - __builtin_clzll(v | 1);
        const std::size_t len = static_cast<std::size_t>(nbits + 6) / 7;
        store_u64(o, x | kContBits[len]);
        o += len;
        continue;
      }
      std::uint64_t rest = v;
      while (rest >= 0x80) {
        *o++ = static_cast<std::byte>((rest & 0x7F) | 0x80);
        rest >>= 7;
      }
      *o++ = static_cast<std::byte>(rest);
    }
    i += 8;
  }
  o += scalar::varint_encode_w8(lanes + i * 8, n - i, o);
  return static_cast<std::size_t>(o - out);
}

std::size_t match_length(const std::byte* a, const std::byte* b,
                         std::size_t max) {
  // DAS chunk streams are dominated by minimum-length matches: ~98% of
  // hash hits diverge on the very first extension byte (quantized
  // samples repeat in 4-byte units, not longer). A one-byte early exit
  // keeps those calls as cheap as the byte loop; the word loop below
  // then only runs for matches that actually extend.
  if (max == 0 || a[0] != b[0]) return 0;
  std::size_t k = 0;
  while (k + 8 <= max) {
    const std::uint64_t x = load_u64(a + k) ^ load_u64(b + k);
    if (x != 0) {
      return k + static_cast<std::size_t>(__builtin_ctzll(x)) / 8;
    }
    k += 8;
  }
  while (k < max && a[k] == b[k]) ++k;
  return k;
}

void copy_match(std::byte* dst, std::size_t dist, std::size_t n) {
  if (n == 0) return;
  if (dist >= 8) {
    // Chunked copy: sources trail the write head by >= 8 bytes, so
    // every 8-byte chunk reads fully written data.
    for (std::size_t k = 0; k < n; k += 8) {
      std::memcpy(dst + k, dst + k - dist, 8);
    }
    return;
  }
  // Overlapping (RLE-style) match: bootstrap the first 8 bytes
  // byte-serially, after which the pattern repeats with period `dist`
  // and can be copied in 8-byte chunks from `wd` bytes back (the
  // smallest multiple of dist >= 8 — still inside produced output).
  const std::byte* src = dst - dist;
  const std::size_t boot = n < 8 ? n : 8;
  for (std::size_t k = 0; k < boot; ++k) dst[k] = src[k];
  if (n <= 8) return;
  const std::size_t wd = dist * ((8 + dist - 1) / dist);
  for (std::size_t k = 8; k < n; k += 8) {
    std::memcpy(dst + k, dst + k - wd, 8);
  }
}

}  // namespace wide

// ---- x86 vector kernels ----------------------------------------------

#if DASSA_SIMD_X86

namespace sse2 {

/// Extract byte plane `p` of 16 u32 lanes held in r0..r3 (shift, mask,
/// then saturating packs — all values are <= 0xFF so saturation is the
/// identity and element order is preserved).
__m128i plane_of_16(__m128i r0, __m128i r1, __m128i r2, __m128i r3, int p) {
  const __m128i ff = _mm_set1_epi32(0xFF);
  const __m128i t0 = _mm_and_si128(_mm_srli_epi32(r0, 8 * p), ff);
  const __m128i t1 = _mm_and_si128(_mm_srli_epi32(r1, 8 * p), ff);
  const __m128i t2 = _mm_and_si128(_mm_srli_epi32(r2, 8 * p), ff);
  const __m128i t3 = _mm_and_si128(_mm_srli_epi32(r3, 8 * p), ff);
  return _mm_packus_epi16(_mm_packs_epi32(t0, t1), _mm_packs_epi32(t2, t3));
}

void shuffle4(const std::byte* in, std::byte* out, std::size_t n) {
  const std::size_t nv = n & ~std::size_t{15};
  for (std::size_t e = 0; e < nv; e += 16) {
    const std::byte* p = in + e * 4;
    const __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i r1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    const __m128i r2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
    const __m128i r3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
    for (int pl = 0; pl < 4; ++pl) {
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + static_cast<std::size_t>(pl) * n +
                                     e),
          plane_of_16(r0, r1, r2, r3, pl));
    }
  }
  scalar::shuffle(in, out, n, 4, nv);
}

/// Rebuild 16 4-byte elements from four 16-byte plane registers.
void elems_from_planes(__m128i p0, __m128i p1, __m128i p2, __m128i p3,
                       std::byte* dst) {
  const __m128i a = _mm_unpacklo_epi8(p0, p1);
  const __m128i b = _mm_unpackhi_epi8(p0, p1);
  const __m128i c = _mm_unpacklo_epi8(p2, p3);
  const __m128i d = _mm_unpackhi_epi8(p2, p3);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                   _mm_unpacklo_epi16(a, c));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                   _mm_unpackhi_epi16(a, c));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32),
                   _mm_unpacklo_epi16(b, d));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 48),
                   _mm_unpackhi_epi16(b, d));
}

void unshuffle4(const std::byte* in, std::byte* out, std::size_t n) {
  const std::size_t nv = n & ~std::size_t{15};
  for (std::size_t e = 0; e < nv; e += 16) {
    const __m128i p0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + e));
    const __m128i p1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + n + e));
    const __m128i p2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 2 * n + e));
    const __m128i p3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 3 * n + e));
    elems_from_planes(p0, p1, p2, p3, out + e * 4);
  }
  scalar::unshuffle(in, out, n, 4, nv);
}

void shuffle8(const std::byte* in, std::byte* out, std::size_t n) {
  const std::size_t nv = n & ~std::size_t{15};
  for (std::size_t e = 0; e < nv; e += 16) {
    const std::byte* p = in + e * 8;
    __m128i lo[4];
    __m128i hi[4];
    for (int k = 0; k < 4; ++k) {
      // Two registers = four u64 elements; split into their low and
      // high dwords (0x88 keeps lanes 0,2 of each source, 0xDD 1,3).
      const __m128 a = _mm_castsi128_ps(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(p + 32 * k)));
      const __m128 b = _mm_castsi128_ps(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(p + 32 * k + 16)));
      lo[k] = _mm_castps_si128(_mm_shuffle_ps(a, b, 0x88));
      hi[k] = _mm_castps_si128(_mm_shuffle_ps(a, b, 0xDD));
    }
    for (int pl = 0; pl < 4; ++pl) {
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + static_cast<std::size_t>(pl) * n +
                                     e),
          plane_of_16(lo[0], lo[1], lo[2], lo[3], pl));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(
              out + static_cast<std::size_t>(pl + 4) * n + e),
          plane_of_16(hi[0], hi[1], hi[2], hi[3], pl));
    }
  }
  scalar::shuffle(in, out, n, 8, nv);
}

void unshuffle8(const std::byte* in, std::byte* out, std::size_t n) {
  const std::size_t nv = n & ~std::size_t{15};
  alignas(16) std::byte lo[64];
  alignas(16) std::byte hi[64];
  for (std::size_t e = 0; e < nv; e += 16) {
    __m128i pl[8];
    for (int p = 0; p < 8; ++p) {
      pl[p] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          in + static_cast<std::size_t>(p) * n + e));
    }
    // Planes 0-3 rebuild the low dwords of 16 elements, planes 4-7 the
    // high dwords; interleave dword pairs back into u64 elements.
    elems_from_planes(pl[0], pl[1], pl[2], pl[3], lo);
    elems_from_planes(pl[4], pl[5], pl[6], pl[7], hi);
    for (int k = 0; k < 4; ++k) {
      const __m128i l =
          _mm_load_si128(reinterpret_cast<const __m128i*>(lo + 16 * k));
      const __m128i h =
          _mm_load_si128(reinterpret_cast<const __m128i*>(hi + 16 * k));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + e * 8 + 32 * k),
          _mm_unpacklo_epi32(l, h));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + e * 8 + 32 * k + 16),
          _mm_unpackhi_epi32(l, h));
    }
  }
  scalar::unshuffle(in, out, n, 8, nv);
}

void delta_zigzag_w4(const std::byte* in, std::byte* out, std::size_t n) {
  if (n < 8) {
    scalar::delta_zigzag_w4(in, out, n);
    return;
  }
  scalar::delta_zigzag_w4(in, out, 4);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i * 4));
    const __m128i prev =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i * 4 - 4));
    const __m128i d = _mm_sub_epi32(cur, prev);
    const __m128i zz =
        _mm_xor_si128(_mm_slli_epi32(d, 1), _mm_srai_epi32(d, 31));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i * 4), zz);
  }
  for (; i < n; ++i) {
    const std::uint32_t v = load_u32(in + i * 4);
    const std::uint32_t d = v - load_u32(in + i * 4 - 4);
    store_u32(out + i * 4, (d << 1) ^ (std::uint32_t{0} - (d >> 31)));
  }
}

void unzigzag_prefix_w4(std::byte* buf, std::size_t n) {
  const std::size_t nv = n & ~std::size_t{3};
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi32(1);
  __m128i carry = zero;
  std::size_t i = 0;
  for (; i < nv; i += 4) {
    const __m128i zz =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + i * 4));
    __m128i sd = _mm_xor_si128(_mm_srli_epi32(zz, 1),
                               _mm_sub_epi32(zero, _mm_and_si128(zz, one)));
    // In-register inclusive prefix sum (two shift-add rounds), then
    // add the running total of all previous lanes.
    sd = _mm_add_epi32(sd, _mm_slli_si128(sd, 4));
    sd = _mm_add_epi32(sd, _mm_slli_si128(sd, 8));
    const __m128i v = _mm_add_epi32(sd, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(buf + i * 4), v);
    carry = _mm_shuffle_epi32(v, 0xFF);
  }
  std::uint32_t prev =
      i == 0 ? 0 : static_cast<std::uint32_t>(_mm_cvtsi128_si32(carry));
  for (; i < n; ++i) {
    const std::uint32_t zz = load_u32(buf + i * 4);
    prev += (zz >> 1) ^ (std::uint32_t{0} - (zz & 1));
    store_u32(buf + i * 4, prev);
  }
}

}  // namespace sse2

namespace avx2 {

__attribute__((target("avx2"))) __m128i transpose_mask() {
  return _mm_setr_epi8(0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
}

__attribute__((target("avx2"))) void shuffle4(const std::byte* in,
                                              std::byte* out, std::size_t n) {
  const std::size_t nv = n & ~std::size_t{15};
  const __m128i m = transpose_mask();
  for (std::size_t e = 0; e < nv; e += 16) {
    const std::byte* p = in + e * 4;
    // Each pshufb groups one register's plane bytes into dword lanes;
    // a 4x4 dword transpose then gathers each plane across registers.
    const __m128i q0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), m);
    const __m128i q1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)), m);
    const __m128i q2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)), m);
    const __m128i q3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)), m);
    const __m128i t0 = _mm_unpacklo_epi32(q0, q1);
    const __m128i t1 = _mm_unpackhi_epi32(q0, q1);
    const __m128i t2 = _mm_unpacklo_epi32(q2, q3);
    const __m128i t3 = _mm_unpackhi_epi32(q2, q3);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + e),
                     _mm_unpacklo_epi64(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n + e),
                     _mm_unpackhi_epi64(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * n + e),
                     _mm_unpacklo_epi64(t1, t3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 3 * n + e),
                     _mm_unpackhi_epi64(t1, t3));
  }
  scalar::shuffle(in, out, n, 4, nv);
}

__attribute__((target("avx2"))) void unshuffle4(const std::byte* in,
                                                std::byte* out,
                                                std::size_t n) {
  const std::size_t nv = n & ~std::size_t{15};
  const __m128i m = transpose_mask();
  for (std::size_t e = 0; e < nv; e += 16) {
    const __m128i p0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + e));
    const __m128i p1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + n + e));
    const __m128i p2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 2 * n + e));
    const __m128i p3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 3 * n + e));
    const __m128i t0 = _mm_unpacklo_epi32(p0, p1);
    const __m128i t1 = _mm_unpackhi_epi32(p0, p1);
    const __m128i t2 = _mm_unpacklo_epi32(p2, p3);
    const __m128i t3 = _mm_unpackhi_epi32(p2, p3);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + e * 4),
        _mm_shuffle_epi8(_mm_unpacklo_epi64(t0, t2), m));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + e * 4 + 16),
        _mm_shuffle_epi8(_mm_unpackhi_epi64(t0, t2), m));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + e * 4 + 32),
        _mm_shuffle_epi8(_mm_unpacklo_epi64(t1, t3), m));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + e * 4 + 48),
        _mm_shuffle_epi8(_mm_unpackhi_epi64(t1, t3), m));
  }
  scalar::unshuffle(in, out, n, 4, nv);
}

}  // namespace avx2

#endif  // DASSA_SIMD_X86

#if DASSA_SIMD_NEON

namespace neon {

void shuffle4(const std::byte* in, std::byte* out, std::size_t n) {
  const std::size_t nv = n & ~std::size_t{15};
  for (std::size_t e = 0; e < nv; e += 16) {
    const uint8x16x4_t v =
        vld4q_u8(reinterpret_cast<const std::uint8_t*>(in + e * 4));
    for (int p = 0; p < 4; ++p) {
      vst1q_u8(reinterpret_cast<std::uint8_t*>(
                   out + static_cast<std::size_t>(p) * n + e),
               v.val[p]);
    }
  }
  scalar::shuffle(in, out, n, 4, nv);
}

void unshuffle4(const std::byte* in, std::byte* out, std::size_t n) {
  const std::size_t nv = n & ~std::size_t{15};
  for (std::size_t e = 0; e < nv; e += 16) {
    uint8x16x4_t v;
    for (int p = 0; p < 4; ++p) {
      v.val[p] = vld1q_u8(reinterpret_cast<const std::uint8_t*>(
          in + static_cast<std::size_t>(p) * n + e));
    }
    vst4q_u8(reinterpret_cast<std::uint8_t*>(out + e * 4), v);
  }
  scalar::unshuffle(in, out, n, 4, nv);
}

}  // namespace neon

#endif  // DASSA_SIMD_NEON

// ---- dispatch --------------------------------------------------------

bool level_available(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse2:
    case Level::kAvx2:
#if DASSA_SIMD_X86
      return level != Level::kAvx2 || __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNeon:
#if DASSA_SIMD_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

/// Cached dispatch level; -1 = not yet resolved.
std::atomic<int> g_level{-1};

Level resolve_level() {
  if (const char* env = std::getenv("DASSA_SIMD")) {
    const std::string want(env);
    for (const Level l : {Level::kScalar, Level::kSse2, Level::kAvx2,
                          Level::kNeon}) {
      if (want == level_name(l) && level_available(l)) return l;
    }
  }
  return detect_level();
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "scalar";
}

Level detect_level() {
#if DASSA_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0 ? Level::kAvx2 : Level::kSse2;
#elif DASSA_SIMD_NEON
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

Level active_level() {
  const int v = g_level.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Level>(v);
  const Level resolved = resolve_level();
  g_level.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

void set_level(Level level) {
  const Level clamped = level_available(level) ? level : detect_level();
  g_level.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

void shuffle_bytes(const std::byte* in, std::byte* out, std::size_t n_elem,
                   std::size_t elem_size) {
  const Level level = active_level();
#if DASSA_SIMD_X86
  if (level == Level::kAvx2 && elem_size == 4) {
    avx2::shuffle4(in, out, n_elem);
    return;
  }
  if (level != Level::kScalar && elem_size == 4) {
    sse2::shuffle4(in, out, n_elem);
    return;
  }
  if (level != Level::kScalar && elem_size == 8) {
    sse2::shuffle8(in, out, n_elem);
    return;
  }
#endif
#if DASSA_SIMD_NEON
  if (level != Level::kScalar && elem_size == 4) {
    neon::shuffle4(in, out, n_elem);
    return;
  }
#endif
  (void)level;
  scalar::shuffle(in, out, n_elem, elem_size, 0);
}

void unshuffle_bytes(const std::byte* in, std::byte* out, std::size_t n_elem,
                     std::size_t elem_size) {
  const Level level = active_level();
#if DASSA_SIMD_X86
  if (level == Level::kAvx2 && elem_size == 4) {
    avx2::unshuffle4(in, out, n_elem);
    return;
  }
  if (level != Level::kScalar && elem_size == 4) {
    sse2::unshuffle4(in, out, n_elem);
    return;
  }
  if (level != Level::kScalar && elem_size == 8) {
    sse2::unshuffle8(in, out, n_elem);
    return;
  }
#endif
#if DASSA_SIMD_NEON
  if (level != Level::kScalar && elem_size == 4) {
    neon::unshuffle4(in, out, n_elem);
    return;
  }
#endif
  (void)level;
  scalar::unshuffle(in, out, n_elem, elem_size, 0);
}

void delta_zigzag_w4(const std::byte* in, std::byte* out, std::size_t n) {
#if DASSA_SIMD_X86
  if (active_level() != Level::kScalar) {
    sse2::delta_zigzag_w4(in, out, n);
    return;
  }
#endif
  scalar::delta_zigzag_w4(in, out, n);
}

void delta_zigzag_w8(const std::byte* in, std::byte* out, std::size_t n) {
  // 64-bit lanes stay scalar on every level: SSE2 lacks a 64-bit
  // arithmetic shift and the varint pack dominates this stage anyway.
  scalar::delta_zigzag_w8(in, out, n);
}

void unzigzag_prefix_w4(std::byte* buf, std::size_t n) {
#if DASSA_SIMD_X86
  if (active_level() != Level::kScalar) {
    sse2::unzigzag_prefix_w4(buf, n);
    return;
  }
#endif
  scalar::unzigzag_prefix_w4(buf, n);
}

void unzigzag_prefix_w8(std::byte* buf, std::size_t n) {
  scalar::unzigzag_prefix_w8(buf, n);
}

std::size_t varint_encode_w4(const std::byte* lanes, std::size_t n,
                             std::byte* out) {
  return active_level() == Level::kScalar
             ? scalar::varint_encode_w4(lanes, n, out)
             : wide::varint_encode_w4(lanes, n, out);
}

std::size_t varint_encode_w8(const std::byte* lanes, std::size_t n,
                             std::byte* out) {
  return active_level() == Level::kScalar
             ? scalar::varint_encode_w8(lanes, n, out)
             : wide::varint_encode_w8(lanes, n, out);
}

VarintResult varint_decode_w4(const std::byte* in, std::size_t in_size,
                              std::byte* lanes, std::size_t n) {
  return active_level() == Level::kScalar
             ? scalar::varint_decode_w4(in, in_size, lanes, n)
             : wide::varint_decode_w4(in, in_size, lanes, n);
}

VarintResult varint_decode_w8(const std::byte* in, std::size_t in_size,
                              std::byte* lanes, std::size_t n) {
  return active_level() == Level::kScalar
             ? scalar::varint_decode_w8(in, in_size, lanes, n)
             : wide::varint_decode_w8(in, in_size, lanes, n);
}

std::size_t match_length(const std::byte* a, const std::byte* b,
                         std::size_t max) {
  return active_level() == Level::kScalar ? scalar::match_length(a, b, max)
                                          : wide::match_length(a, b, max);
}

void copy_match(std::byte* dst, std::size_t dist, std::size_t n) {
  if (active_level() == Level::kScalar) {
    scalar::copy_match(dst, dist, n);
  } else {
    wide::copy_match(dst, dist, n);
  }
}

}  // namespace dassa::simd
