#include "dassa/common/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"

namespace dassa {

double HistogramSnapshot::quantile_ns(double q) const {
  DASSA_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= target) {
      // Interpolate linearly inside the power-of-two bucket
      // [2^i, 2^(i+1)): bucket 0 also holds 0 ns and 1 ns durations.
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
      const double frac =
          in_bucket > 0.0 ? (target - seen) / in_bucket : 0.0;
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    seen += in_bucket;
  }
  return std::ldexp(1.0, 63);  // everything landed in the top bucket
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  DASSA_CHECK(count <= std::numeric_limits<std::uint64_t>::max() - other.count,
              "histogram merge would overflow the sample count");
  count += other.count;
  total_ns += other.total_ns;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

namespace {

/// Reset-guard containment test: a live histogram only ever grows, so
/// an "older" snapshot with more in any field than the newer one means
/// the process (or registry) was reset between the two samples.
bool check_reset_between(const HistogramSnapshot& newer,
                         const HistogramSnapshot& older) {
  if (older.count > newer.count || older.total_ns > newer.total_ns) {
    return true;
  }
  for (std::size_t i = 0; i < newer.buckets.size(); ++i) {
    if (older.buckets[i] > newer.buckets[i]) return true;
  }
  return false;
}

}  // namespace

HistogramSnapshot HistogramSnapshot::diff(
    const HistogramSnapshot& older) const {
  // After a reset the newer snapshot IS the delta: everything in it
  // was recorded since, and a delta must never go negative.
  if (check_reset_between(*this, older)) return *this;
  HistogramSnapshot d;
  d.count = count - older.count;
  d.total_ns = total_ns - older.total_ns;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    d.buckets[i] = buckets[i] - older.buckets[i];
  }
  return d;
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.total_ns = total_ns_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void LatencyHistogram::merge(const HistogramSnapshot& other) {
  DASSA_CHECK(count_.load(std::memory_order_relaxed) <=
                  std::numeric_limits<std::uint64_t>::max() - other.count,
              "histogram merge would overflow the sample count");
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    if (other.buckets[i] != 0) {
      buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  total_ns_.fetch_add(other.total_ns, std::memory_order_relaxed);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  DASSA_CHECK(!name.empty(), "histogram name must be non-empty");
  {
    ReaderLock lock(mu_);
    const auto it = hists_.find(name);
    if (it != hists_.end()) return *it->second;
  }
  WriterLock lock(mu_);
  auto& slot = hists_[std::string(name)];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::snapshot() const {
  ReaderLock lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : hists_) {
    out.emplace(name, hist->snapshot());
  }
  return out;
}

void MetricsRegistry::merge(
    const std::map<std::string, HistogramSnapshot>& other) {
  for (const auto& [name, snap] : other) {
    DASSA_CHECK(!name.empty(), "merged histogram name must be non-empty");
    histogram(name).merge(snap);
  }
}

void MetricsRegistry::reset() {
  WriterLock lock(mu_);
  for (auto& [_, hist] : hists_) hist->reset();
}

void MetricsRegistry::write_report(std::ostream& os) const {
  DASSA_CHECK(os.good(), "metrics report stream is not writable");
  for (const auto& [name, value] : global_counters().snapshot()) {
    os << "  " << name << " = " << value << "\n";
  }
  for (const auto& [name, h] : snapshot()) {
    if (h.count == 0) continue;
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %s: count=%llu total_ms=%.3f p50_us=%.1f p95_us=%.1f "
                  "p99_us=%.1f",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<double>(h.total_ns) / 1e6,
                  h.quantile_ns(0.50) / 1e3, h.quantile_ns(0.95) / 1e3,
                  h.quantile_ns(0.99) / 1e3);
    os << line << "\n";
  }
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry reg;
  return reg;
}

}  // namespace dassa
