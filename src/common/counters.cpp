#include "dassa/common/counters.hpp"

namespace dassa {

CounterRegistry& global_counters() {
  static CounterRegistry registry;
  return registry;
}

}  // namespace dassa
