#include "dassa/common/error.hpp"

#include <sstream>

namespace dassa::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << msg << " (check `" << expr << "` failed at " << file << ":" << line
     << ")";
  throw InvalidArgument(os.str());
}

}  // namespace dassa::detail
