#include "dassa/common/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "dassa/common/shape.hpp"
#include "dassa/common/trace.hpp"

namespace dassa {

ThreadPool::ThreadPool(std::size_t num_threads, bool inherit_trace_rank) {
  DASSA_CHECK(num_threads >= 1, "thread pool needs at least one thread");
  const int rank = inherit_trace_rank ? trace::thread_rank() : -1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, rank] {
      trace::set_thread_rank(rank);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    DASSA_CHECK(!stop_, "submit on stopped thread pool");
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (!tasks_.empty() || in_flight_ != 0) cv_idle_.wait(lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_task_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  DASSA_CHECK(body != nullptr, "parallel_for needs a callable body");
  if (n == 0) return;
  const std::size_t chunks = size();
  std::atomic<std::size_t> remaining{chunks};
  std::exception_ptr first_error;
  Mutex error_mu;
  CondVar done_cv;
  Mutex done_mu;

  for (std::size_t t = 0; t < chunks; ++t) {
    submit([&, t] {
      const Range r = even_chunk(n, chunks, t);
      try {
        if (r.size() > 0) body(t, r.begin, r.end);
      } catch (...) {
        MutexLock lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        MutexLock lock(done_mu);
        done_cv.notify_all();
      }
    });
  }
  MutexLock lock(done_mu);
  while (remaining.load() != 0) done_cv.wait(lock);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dassa
