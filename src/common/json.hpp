// DASSA common (internal): minimal JSON reading and escaping shared by
// the chrome-trace inspector (trace.cpp), the telemetry JSONL layer
// (telemetry.cpp), and the structured log sinks (log.cpp).
//
// This is an src/-internal header: the public surface is the typed
// parse/validate functions those modules export. The reader is a
// recursive-descent parser sufficient for the documents DASSA itself
// emits; it throws dassa::FormatError with byte offsets on any syntax
// error, which is the contract the schema tests pin.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dassa/common/error.hpp"

namespace dassa::jsonio {

/// Append `s` to `out` as a quoted, escaped JSON string literal.
inline void escape(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline void escape(std::string& out, const std::string& s) {
  escape(out, s.c_str());
}

/// Minimal recursive-descent JSON reader. Throws dassa::FormatError
/// with byte offsets on any syntax error.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {
    DASSA_CHECK(!text.empty(), "empty JSON document");
  }

  struct Value {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj;

    [[nodiscard]] const Value* find(const std::string& key) const {
      for (const auto& [k, v] : obj) {
        if (k == key) return &v;
      }
      return nullptr;
    }
  };

  Value parse() {
    Value v = value();
    skip_ws();
    if (i_ != s_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw FormatError("JSON at byte " + std::to_string(i_) + ": " + why);
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
            s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    skip_ws();
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  Value value() {
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return boolean();
      case 'n': return null_value();
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    if (peek() == '}') {
      ++i_;
      return v;
    }
    while (true) {
      Value key = string_value();
      expect(':');
      v.obj.emplace_back(std::move(key.str), value());
      const char c = peek();
      ++i_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    if (peek() == ']') {
      ++i_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      const char c = peek();
      ++i_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  Value string_value() {
    expect('"');
    Value v;
    v.type = Value::Type::kString;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (i_ >= s_.size()) fail("unterminated escape");
        const char e = s_[i_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'r': v.str += '\r'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s_[i_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape digit");
              }
            }
            // DASSA only ever emits ASCII control escapes; map the
            // BMP code point to one byte when it fits, '?' otherwise.
            v.str += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: fail("unknown string escape");
        }
      } else {
        v.str += c;
      }
    }
  }

  Value boolean() {
    Value v;
    v.type = Value::Type::kBool;
    if (s_.compare(i_, 4, "true") == 0) {
      v.boolean = true;
      i_ += 4;
    } else if (s_.compare(i_, 5, "false") == 0) {
      v.boolean = false;
      i_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Value null_value() {
    if (s_.compare(i_, 4, "null") != 0) fail("bad literal");
    i_ += 4;
    Value v;
    v.type = Value::Type::kNull;
    return v;
  }

  Value number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    while (i_ < s_.size() &&
           ((s_[i_] >= '0' && s_[i_] <= '9') || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '-' ||
            s_[i_] == '+')) {
      ++i_;
    }
    if (i_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::kNumber;
    try {
      v.number = std::stod(s_.substr(start, i_ - start));
    } catch (const std::exception&) {
      throw FormatError("JSON at byte " + std::to_string(start) +
                        ": malformed number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace dassa::jsonio
