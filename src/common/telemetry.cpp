#include "dassa/common/telemetry.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <unistd.h>

#include <fstream>
#endif

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/trace.hpp"
#include "json.hpp"

namespace dassa::telemetry {

// ---------------------------------------------------------------------------
// Resources and gauges
// ---------------------------------------------------------------------------

ResourceUsage sample_resources() {
  ResourceUsage res;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // Linux reports ru_maxrss in KiB (macOS in bytes; we only gate on
    // the Linux convention since that is the deployment target).
    res.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
    const auto tv_ns = [](const timeval& tv) {
      return static_cast<std::uint64_t>(tv.tv_sec) * 1'000'000'000u +
             static_cast<std::uint64_t>(tv.tv_usec) * 1'000u;
    };
    res.user_cpu_ns = tv_ns(ru.ru_utime);
    res.sys_cpu_ns = tv_ns(ru.ru_stime);
  }
#endif
#if defined(__linux__)
  // statm field 2 is resident pages; cheaper than parsing /proc/self/status.
  if (std::ifstream statm("/proc/self/statm"); statm.good()) {
    std::uint64_t total_pages = 0;
    std::uint64_t resident_pages = 0;
    if (statm >> total_pages >> resident_pages) {
      res.rss_bytes = resident_pages *
                      static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
    }
  }
#endif
  return res;
}

namespace {

struct GaugeRegistry {
  Mutex mu;
  std::map<std::string, GaugeFn> gauges DASSA_GUARDED_BY(mu);
};

GaugeRegistry& gauge_registry() {
  static GaugeRegistry reg;
  // Built-in gauges: the tracer's in-flight and dropped spans (the
  // stall detector keys off open spans) and the log record count.
  static const bool builtins_installed = [] {
    MutexLock lock(reg.mu);
    reg.gauges["trace.open_spans"] = [] {
      return static_cast<double>(trace::open_spans());
    };
    reg.gauges["trace.dropped_spans"] = [] {
      return static_cast<double>(trace::dropped_spans());
    };
    reg.gauges["log.records"] = [] {
      return static_cast<double>(log_records_emitted());
    };
    return true;
  }();
  (void)builtins_installed;
  return reg;
}

}  // namespace

void register_gauge(const std::string& name, GaugeFn fn) {
  DASSA_CHECK(!name.empty(), "gauge name must be non-empty");
  DASSA_CHECK(static_cast<bool>(fn), "gauge function must be callable");
  GaugeRegistry& reg = gauge_registry();
  MutexLock lock(reg.mu);
  reg.gauges[name] = std::move(fn);
}

std::map<std::string, double> read_gauges() {
  std::map<std::string, GaugeFn> fns;
  {
    GaugeRegistry& reg = gauge_registry();
    MutexLock lock(reg.mu);
    fns = reg.gauges;
  }
  // Call outside the lock: a gauge may itself take locks (queue depth,
  // cache occupancy) and must not order against registration.
  std::map<std::string, double> out;
  for (const auto& [name, fn] : fns) out.emplace(name, fn());
  return out;
}

// ---------------------------------------------------------------------------
// TelemetrySampler
// ---------------------------------------------------------------------------

TelemetrySampler::TelemetrySampler(SamplerConfig cfg) : cfg_(cfg) {
  DASSA_CHECK(cfg_.period.count() > 0, "sampler period must be positive");
  DASSA_CHECK(cfg_.max_samples > 0, "sampler max_samples must be positive");
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  MutexLock lock(mu_);
  DASSA_CHECK(!running_, "sampler already started");
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void TelemetrySampler::stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  MutexLock lock(mu_);
  running_ = false;
}

bool TelemetrySampler::running() const {
  MutexLock lock(mu_);
  return running_;
}

void TelemetrySampler::tick() {
  // One ticker at a time, snapshot through append: without this, a
  // manual tick() racing the background loop could snapshot earlier
  // counter values but win the race for the later seq, producing a
  // timeline (and JSONL stream) that violates the monotone-counter
  // invariant validate_stream enforces.
  MutexLock tick_lock(tick_mu_);

  // Charge the sample counter first so the sample we are about to take
  // already reflects it -- keeps "telemetry.samples == seq + 1"
  // invariant the deterministic test pins.
  global_counters().add(counters::kTelemetrySamples);

  Sample s;
  s.wall_ns = trace::detail::now_ns();
  s.res = sample_resources();
  s.counters = global_counters().snapshot();
  s.gauges = read_gauges();
  if (cfg_.include_histograms) {
    for (const auto& [name, h] : global_metrics().snapshot()) {
      if (h.count == 0) continue;
      const std::string base = "hist." + name;
      s.gauges[base + ".count"] = static_cast<double>(h.count);
      s.gauges[base + ".p50_ns"] = h.quantile_ns(0.50);
      s.gauges[base + ".p95_ns"] = h.quantile_ns(0.95);
      s.gauges[base + ".p99_ns"] = h.quantile_ns(0.99);
    }
  }

  MutexLock lock(mu_);
  if (samples_.size() >= cfg_.max_samples) {
    ++dropped_;
    return;
  }
  s.seq = next_seq_++;
  samples_.push_back(std::move(s));
}

std::vector<Sample> TelemetrySampler::timeline() const {
  MutexLock lock(mu_);
  return samples_;
}

std::uint64_t TelemetrySampler::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void TelemetrySampler::run_loop() {
  while (true) {
    const auto deadline = std::chrono::steady_clock::now() + cfg_.period;
    {
      MutexLock lock(mu_);
      while (!stop_requested_) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
      if (stop_requested_) return;
    }
    tick();
  }
}

// ---------------------------------------------------------------------------
// JSONL writer
// ---------------------------------------------------------------------------

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

void append_counter_map(std::string& out,
                        const std::map<std::string, std::uint64_t>& m) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ',';
    first = false;
    jsonio::escape(out, k);
    out += ':';
    append_u64(out, v);
  }
  out += '}';
}

void append_gauge_map(std::string& out,
                      const std::map<std::string, double>& m) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ',';
    first = false;
    jsonio::escape(out, k);
    out += ':';
    append_double(out, v);
  }
  out += '}';
}

}  // namespace

void write_telemetry_file(std::ostream& os, const TelemetryFile& file) {
  DASSA_CHECK(os.good(), "telemetry output stream is not writable");
  std::string line;

  line += "{\"type\":\"meta\",\"schema\":";
  jsonio::escape(line, kSchemaVersion);
  for (const auto& [k, v] : file.meta) {
    if (k == "schema") continue;  // the writer owns the schema stamp
    line += ',';
    jsonio::escape(line, k);
    line += ':';
    jsonio::escape(line, v);
  }
  line += "}\n";
  os << line;

  for (const Sample& s : file.samples) {
    line.clear();
    line += "{\"type\":\"sample\",\"seq\":";
    append_u64(line, s.seq);
    line += ",\"wall_ns\":";
    append_u64(line, s.wall_ns);
    line += ",\"rss_bytes\":";
    append_u64(line, s.res.rss_bytes);
    line += ",\"peak_rss_bytes\":";
    append_u64(line, s.res.peak_rss_bytes);
    line += ",\"user_cpu_ns\":";
    append_u64(line, s.res.user_cpu_ns);
    line += ",\"sys_cpu_ns\":";
    append_u64(line, s.res.sys_cpu_ns);
    line += ",\"counters\":";
    append_counter_map(line, s.counters);
    line += ",\"gauges\":";
    append_gauge_map(line, s.gauges);
    line += "}\n";
    os << line;
  }

  for (const StageRecord& st : file.stages) {
    line.clear();
    line += "{\"type\":\"stage\",\"name\":";
    jsonio::escape(line, st.name);
    line += ",\"seconds\":";
    append_double(line, st.seconds);
    line += ",\"bytes\":";
    append_u64(line, st.bytes);
    line += ",\"rows\":";
    append_u64(line, st.rows);
    line += "}\n";
    os << line;
  }

  for (const RankRecord& r : file.ranks) {
    line.clear();
    line += "{\"type\":\"rank\",\"rank\":";
    line += std::to_string(r.rank);
    line += ",\"counters\":";
    append_counter_map(line, r.counters);
    line += "}\n";
    os << line;
  }

  for (const AggRecord& a : file.aggs) {
    line.clear();
    line += "{\"type\":\"agg\",\"counter\":";
    jsonio::escape(line, a.counter);
    line += ",\"sum\":";
    append_u64(line, a.sum);
    line += ",\"min\":";
    append_u64(line, a.min);
    line += ",\"max\":";
    append_u64(line, a.max);
    line += ",\"min_rank\":";
    line += std::to_string(a.min_rank);
    line += ",\"max_rank\":";
    line += std::to_string(a.max_rank);
    line += ",\"imbalance\":";
    append_double(line, a.imbalance);
    line += "}\n";
    os << line;
  }

  for (const HistRecord& h : file.hists) {
    line.clear();
    line += "{\"type\":\"hist\",\"name\":";
    jsonio::escape(line, h.name);
    line += ",\"count\":";
    append_u64(line, h.count);
    line += ",\"total_ns\":";
    append_u64(line, h.total_ns);
    line += ",\"p50_ns\":";
    append_double(line, h.p50_ns);
    line += ",\"p95_ns\":";
    append_double(line, h.p95_ns);
    line += ",\"p99_ns\":";
    append_double(line, h.p99_ns);
    line += ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) line += ',';
      append_u64(line, h.buckets[i]);
    }
    line += "]}\n";
    os << line;
  }
  os.flush();
}

// ---------------------------------------------------------------------------
// JSONL parser
// ---------------------------------------------------------------------------

namespace {

using JsonValue = jsonio::JsonReader::Value;
using VT = JsonValue::Type;

[[noreturn]] void line_fail(std::size_t line_no, const std::string& why) {
  throw FormatError("telemetry line " + std::to_string(line_no) + ": " + why);
}

const JsonValue& require(const JsonValue& rec, const char* key, VT type,
                         std::size_t line_no) {
  const JsonValue* v = rec.find(key);
  if (v == nullptr || v->type != type) {
    line_fail(line_no, std::string("missing required field '") + key + "'");
  }
  return *v;
}

std::uint64_t require_u64(const JsonValue& rec, const char* key,
                          std::size_t line_no) {
  const double d = require(rec, key, VT::kNumber, line_no).number;
  if (d < 0) {
    line_fail(line_no, std::string("field '") + key + "' is negative");
  }
  return static_cast<std::uint64_t>(d);
}

std::map<std::string, std::uint64_t> require_counter_map(
    const JsonValue& rec, const char* key, std::size_t line_no) {
  const JsonValue& obj = require(rec, key, VT::kObject, line_no);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [k, v] : obj.obj) {
    if (v.type != VT::kNumber || v.number < 0) {
      line_fail(line_no, "counter '" + k + "' is not a non-negative number");
    }
    out.emplace(k, static_cast<std::uint64_t>(v.number));
  }
  return out;
}

}  // namespace

TelemetryFile parse_telemetry_jsonl(const std::string& text) {
  DASSA_CHECK(!text.empty(), "empty telemetry document");
  TelemetryFile file;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    JsonValue rec;
    try {
      rec = jsonio::JsonReader(line).parse();
    } catch (const FormatError& e) {
      line_fail(line_no, e.what());
    }
    if (rec.type != VT::kObject) line_fail(line_no, "record is not an object");
    const std::string& type = require(rec, "type", VT::kString, line_no).str;

    if (type == "meta") {
      for (const auto& [k, v] : rec.obj) {
        if (k == "type") continue;
        if (v.type != VT::kString) {
          line_fail(line_no, "meta field '" + k + "' is not a string");
        }
        file.meta[k] = v.str;
      }
    } else if (type == "sample") {
      Sample s;
      s.seq = require_u64(rec, "seq", line_no);
      s.wall_ns = require_u64(rec, "wall_ns", line_no);
      s.res.rss_bytes = require_u64(rec, "rss_bytes", line_no);
      s.res.peak_rss_bytes = require_u64(rec, "peak_rss_bytes", line_no);
      s.res.user_cpu_ns = require_u64(rec, "user_cpu_ns", line_no);
      s.res.sys_cpu_ns = require_u64(rec, "sys_cpu_ns", line_no);
      s.counters = require_counter_map(rec, "counters", line_no);
      for (const auto& [k, v] :
           require(rec, "gauges", VT::kObject, line_no).obj) {
        if (v.type != VT::kNumber) {
          line_fail(line_no, "gauge '" + k + "' is not a number");
        }
        s.gauges.emplace(k, v.number);
      }
      file.samples.push_back(std::move(s));
    } else if (type == "stage") {
      StageRecord st;
      st.name = require(rec, "name", VT::kString, line_no).str;
      st.seconds = require(rec, "seconds", VT::kNumber, line_no).number;
      st.bytes = require_u64(rec, "bytes", line_no);
      st.rows = require_u64(rec, "rows", line_no);
      file.stages.push_back(std::move(st));
    } else if (type == "rank") {
      RankRecord r;
      r.rank =
          static_cast<int>(require(rec, "rank", VT::kNumber, line_no).number);
      r.counters = require_counter_map(rec, "counters", line_no);
      file.ranks.push_back(std::move(r));
    } else if (type == "agg") {
      AggRecord a;
      a.counter = require(rec, "counter", VT::kString, line_no).str;
      a.sum = require_u64(rec, "sum", line_no);
      a.min = require_u64(rec, "min", line_no);
      a.max = require_u64(rec, "max", line_no);
      a.min_rank = static_cast<int>(
          require(rec, "min_rank", VT::kNumber, line_no).number);
      a.max_rank = static_cast<int>(
          require(rec, "max_rank", VT::kNumber, line_no).number);
      a.imbalance = require(rec, "imbalance", VT::kNumber, line_no).number;
      file.aggs.push_back(std::move(a));
    } else if (type == "hist") {
      HistRecord h;
      h.name = require(rec, "name", VT::kString, line_no).str;
      h.count = require_u64(rec, "count", line_no);
      h.total_ns = require_u64(rec, "total_ns", line_no);
      h.p50_ns = require(rec, "p50_ns", VT::kNumber, line_no).number;
      h.p95_ns = require(rec, "p95_ns", VT::kNumber, line_no).number;
      h.p99_ns = require(rec, "p99_ns", VT::kNumber, line_no).number;
      const JsonValue& buckets =
          require(rec, "buckets", VT::kArray, line_no);
      if (buckets.arr.size() != h.buckets.size()) {
        line_fail(line_no, "hist must carry exactly 64 buckets");
      }
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (buckets.arr[i].type != VT::kNumber || buckets.arr[i].number < 0) {
          line_fail(line_no, "hist bucket is not a non-negative number");
        }
        h.buckets[i] = static_cast<std::uint64_t>(buckets.arr[i].number);
      }
      file.hists.push_back(std::move(h));
    } else {
      line_fail(line_no, "unknown record type '" + type + "'");
    }
  }
  return file;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

void validate_telemetry_file(const TelemetryFile& file) {
  const auto it = file.meta.find("schema");
  if (it == file.meta.end()) {
    throw FormatError("telemetry file has no meta/schema record");
  }
  if (it->second != kSchemaVersion) {
    throw FormatError("unsupported telemetry schema '" + it->second + "'");
  }

  // Samples: contiguous sequence, monotone clock, monotone counters.
  std::map<std::string, std::uint64_t> prev_counters;
  std::uint64_t prev_wall = 0;
  for (std::size_t i = 0; i < file.samples.size(); ++i) {
    const Sample& s = file.samples[i];
    if (s.seq != i) {
      throw FormatError("sample " + std::to_string(i) +
                        " has seq " + std::to_string(s.seq) +
                        " (sequence must be contiguous from 0)");
    }
    if (i > 0 && s.wall_ns < prev_wall) {
      throw FormatError("sample " + std::to_string(i) +
                        " goes backwards in time");
    }
    prev_wall = s.wall_ns;
    for (const auto& [name, value] : s.counters) {
      const auto prev = prev_counters.find(name);
      if (prev != prev_counters.end() && value < prev->second) {
        throw FormatError("counter '" + name + "' decreases at sample " +
                          std::to_string(i));
      }
      prev_counters[name] = value;
    }
  }

  for (const StageRecord& st : file.stages) {
    if (st.name.empty()) throw FormatError("stage record has empty name");
    if (st.seconds < 0) {
      throw FormatError("stage '" + st.name + "' has negative duration");
    }
  }

  // Histograms: the count must equal the bucket sum, exactly.
  for (const HistRecord& h : file.hists) {
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t b : h.buckets) bucket_sum += b;
    if (bucket_sum != h.count) {
      throw FormatError("hist '" + h.name + "' count " +
                        std::to_string(h.count) +
                        " != bucket sum " + std::to_string(bucket_sum));
    }
  }

  // Aggregates: exactly consistent with the per-rank records. This is
  // the acceptance criterion with teeth -- the imbalance table cannot
  // drift from the per-rank totals it claims to summarize.
  for (const AggRecord& a : file.aggs) {
    if (file.ranks.empty()) {
      throw FormatError("agg '" + a.counter + "' with no rank records");
    }
    std::uint64_t sum = 0;
    std::uint64_t mn = 0;
    std::uint64_t mx = 0;
    int mn_rank = 0;
    int mx_rank = 0;
    bool first = true;
    for (const RankRecord& r : file.ranks) {
      const auto rit = r.counters.find(a.counter);
      const std::uint64_t v = rit == r.counters.end() ? 0 : rit->second;
      sum += v;
      if (first || v < mn) {
        mn = v;
        mn_rank = r.rank;
      }
      if (first || v > mx) {
        mx = v;
        mx_rank = r.rank;
      }
      first = false;
    }
    if (a.sum != sum || a.min != mn || a.max != mx) {
      throw FormatError("agg '" + a.counter +
                        "' disagrees with the rank records (sum " +
                        std::to_string(a.sum) + " vs " + std::to_string(sum) +
                        ", min " + std::to_string(a.min) + " vs " +
                        std::to_string(mn) + ", max " + std::to_string(a.max) +
                        " vs " + std::to_string(mx) + ")");
    }
    if (a.min_rank != mn_rank || a.max_rank != mx_rank) {
      throw FormatError("agg '" + a.counter +
                        "' names wrong extreme ranks");
    }
  }
}

// ---------------------------------------------------------------------------
// Health report
// ---------------------------------------------------------------------------

namespace {

std::uint64_t final_counter(const TelemetryFile& file,
                            const std::string& name) {
  if (file.samples.empty()) return 0;
  const auto& counters = file.samples.back().counters;
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

}  // namespace

void write_health_report(std::ostream& os, const TelemetryFile& file) {
  DASSA_CHECK(os.good(), "health report stream is not writable");
  char buf[256];

  os << "== dassa pipeline health (" << kSchemaVersion << ") ==\n";
  for (const auto& [k, v] : file.meta) {
    if (k == "schema") continue;
    os << "  " << k << " = " << v << "\n";
  }

  if (!file.stages.empty()) {
    double total_s = 0.0;
    for (const StageRecord& st : file.stages) total_s += st.seconds;
    os << "\nstages:\n";
    os << "  stage        seconds   share      MB/s        rows/s\n";
    for (const StageRecord& st : file.stages) {
      const double share = total_s > 0 ? st.seconds / total_s * 100.0 : 0.0;
      const double mbs = st.seconds > 0
                             ? static_cast<double>(st.bytes) / 1e6 / st.seconds
                             : 0.0;
      const double rps =
          st.seconds > 0 ? static_cast<double>(st.rows) / st.seconds : 0.0;
      std::snprintf(buf, sizeof buf,
                    "  %-10s %9.3f  %5.1f%%  %8.1f  %12.1f\n",
                    st.name.c_str(), st.seconds, share, mbs, rps);
      os << buf;
    }
  }

  if (!file.samples.empty()) {
    const Sample& last = file.samples.back();
    std::snprintf(buf, sizeof buf,
                  "\nresources (final of %zu samples):\n"
                  "  rss=%.1f MiB peak_rss=%.1f MiB user_cpu=%.2fs "
                  "sys_cpu=%.2fs\n",
                  file.samples.size(),
                  static_cast<double>(last.res.rss_bytes) / (1024.0 * 1024.0),
                  static_cast<double>(last.res.peak_rss_bytes) /
                      (1024.0 * 1024.0),
                  static_cast<double>(last.res.user_cpu_ns) / 1e9,
                  static_cast<double>(last.res.sys_cpu_ns) / 1e9);
    os << buf;

    const std::uint64_t hits = final_counter(file, "io.cache.hits");
    const std::uint64_t misses = final_counter(file, "io.cache.misses");
    const std::uint64_t raw = final_counter(file, "io.codec.bytes_raw");
    const std::uint64_t stored = final_counter(file, "io.codec.bytes_stored");
    if (hits + misses > 0 || stored > 0) {
      os << "\nefficiency:\n";
      if (hits + misses > 0) {
        std::snprintf(buf, sizeof buf,
                      "  cache hit ratio: %.1f%% (%" PRIu64 " hits / %" PRIu64
                      " lookups)\n",
                      static_cast<double>(hits) /
                          static_cast<double>(hits + misses) * 100.0,
                      hits, hits + misses);
        os << buf;
      }
      if (stored > 0) {
        std::snprintf(buf, sizeof buf,
                      "  codec ratio: %.2fx (%" PRIu64 " raw -> %" PRIu64
                      " stored bytes)\n",
                      static_cast<double>(raw) / static_cast<double>(stored),
                      raw, stored);
        os << buf;
      }
    }
  }

  if (!file.aggs.empty()) {
    os << "\nrank balance (" << file.ranks.size() << " ranks):\n";
    os << "  counter                        sum        min(rank)"
       << "        max(rank)  imbalance\n";
    for (const AggRecord& a : file.aggs) {
      std::snprintf(buf, sizeof buf,
                    "  %-24s %10" PRIu64 " %10" PRIu64 " (r%d) %10" PRIu64
                    " (r%d)      %5.2fx\n",
                    a.counter.c_str(), a.sum, a.min, a.min_rank, a.max,
                    a.max_rank, a.imbalance);
      os << buf;
    }
  }

  if (!file.hists.empty()) {
    os << "\nlatency (cluster-merged):\n";
    os << "  span                                  count     p50_us"
       << "     p95_us     p99_us\n";
    for (const HistRecord& h : file.hists) {
      std::snprintf(buf, sizeof buf,
                    "  %-36s %6" PRIu64 " %10.1f %10.1f %10.1f\n",
                    h.name.c_str(), h.count, h.p50_ns / 1e3, h.p95_ns / 1e3,
                    h.p99_ns / 1e3);
      os << buf;
    }
  }

  // Stall scan: an interval with zero counter progress while spans
  // were open means work was nominally in flight but nothing retired.
  std::size_t stalls = 0;
  for (std::size_t i = 1; i < file.samples.size(); ++i) {
    const Sample& prev = file.samples[i - 1];
    const Sample& cur = file.samples[i];
    std::uint64_t progress = 0;
    for (const auto& [name, value] : cur.counters) {
      const auto it = prev.counters.find(name);
      // The sampler's own tick always advances telemetry.samples;
      // exclude it so a stalled pipeline is not masked by the sampler.
      if (name == counters::kTelemetrySamples) continue;
      progress += value - (it == prev.counters.end() ? 0 : it->second);
    }
    const auto open_it = cur.gauges.find("trace.open_spans");
    const bool spans_open =
        open_it != cur.gauges.end() && open_it->second > 0;
    if (progress == 0 && spans_open) {
      ++stalls;
      std::snprintf(
          buf, sizeof buf,
          "WARNING: stall: no counter progress in sample interval %zu -> "
          "%zu (%.1f ms) while %.0f span(s) open\n",
          i - 1, i,
          static_cast<double>(cur.wall_ns - prev.wall_ns) / 1e6,
          open_it->second);
      os << buf;
    }
  }
  if (stalls == 0 && file.samples.size() > 1) {
    os << "\nno stalls detected across "
       << file.samples.size() - 1 << " sample intervals\n";
  }
}

}  // namespace dassa::telemetry
