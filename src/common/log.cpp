#include "dassa/common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <utility>

#include "dassa/common/error.hpp"
#include "dassa/common/sync.hpp"
#include "dassa/common/trace.hpp"
#include "json.hpp"

namespace dassa {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<std::uint64_t> g_records{0};

/// Sinks share one mutex: records are rare (framework events, never
/// hot paths), so serialising console, file, and ring keeps lines from
/// interleaving without a lock-free design.
struct Sinks {
  Mutex mu;
  std::ofstream file DASSA_GUARDED_BY(mu);  // JSONL sink; open() == active
  std::deque<LogRecord> ring DASSA_GUARDED_BY(mu);  // warn+ ring, front=oldest
  std::size_t ring_capacity DASSA_GUARDED_BY(mu) = 128;
};

Sinks& sinks() {
  static Sinks s;
  return s;
}

/// Process-unique small thread id for log attribution (independent of
/// the tracer's tids, which only exist once a span was emitted).
std::uint32_t log_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

void write_console(const LogRecord& rec) {
  std::string line;
  line.reserve(96 + rec.message.size());
  char head[96];
  std::snprintf(head, sizeof head, "[dassa %s %.3f r%d t%u] ",
                log_level_name(rec.level), rec.wall_seconds, rec.rank,
                rec.tid);
  line += head;
  if (!rec.event.empty()) {
    line += rec.event;
    line += ": ";
  }
  line += rec.message;
  for (const LogField& f : rec.fields) {
    line += ' ';
    line += f.key;
    line += '=';
    line += f.value;
  }
  // The one sanctioned stderr write in the tree (see das_lint's
  // no-direct-stderr rule).
  std::fprintf(stderr, "%s\n", line.c_str());
}

void write_jsonl(std::ofstream& os, const LogRecord& rec) {
  std::string line;
  line.reserve(128 + rec.message.size());
  char head[96];
  std::snprintf(head, sizeof head,
                "{\"ts_s\":%.6f,\"level\":\"%s\",\"rank\":%d,\"tid\":%u",
                rec.wall_seconds, log_level_name(rec.level), rec.rank,
                rec.tid);
  line += head;
  line += ",\"event\":";
  jsonio::escape(line, rec.event);
  line += ",\"msg\":";
  jsonio::escape(line, rec.message);
  line += ",\"fields\":{";
  bool first = true;
  for (const LogField& f : rec.fields) {
    if (!first) line += ',';
    first = false;
    jsonio::escape(line, f.key);
    line += ':';
    if (f.quoted) {
      jsonio::escape(line, f.value);
    } else {
      line += f.value;
    }
  }
  line += "}}\n";
  os << line;
  os.flush();
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

void set_log_file(const std::string& path) {
  Sinks& s = sinks();
  MutexLock lock(s.mu);
  if (s.file.is_open()) s.file.close();
  if (path.empty()) return;
  s.file.open(path, std::ios::app);
  if (!s.file.is_open()) {
    throw IoError("cannot open log file: " + path);
  }
}

void set_error_ring_capacity(std::size_t records) {
  DASSA_CHECK(records > 0, "error ring capacity must be positive");
  Sinks& s = sinks();
  MutexLock lock(s.mu);
  s.ring_capacity = records;
  while (s.ring.size() > s.ring_capacity) s.ring.pop_front();
}

std::vector<LogRecord> recent_errors() {
  Sinks& s = sinks();
  MutexLock lock(s.mu);
  return {s.ring.begin(), s.ring.end()};
}

std::uint64_t log_records_emitted() {
  return g_records.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  detail::emit_record(level, {}, msg, {});
}

namespace detail {

std::string LogBuilder::render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

void emit_record(LogLevel level, std::string event, std::string message,
                 std::vector<LogField> fields) {
  LogRecord rec;
  rec.level = level;
  rec.wall_seconds = std::chrono::duration<double>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  rec.rank = trace::thread_rank();
  rec.tid = log_tid();
  rec.event = std::move(event);
  rec.message = std::move(message);
  rec.fields = std::move(fields);

  g_records.fetch_add(1, std::memory_order_relaxed);
  Sinks& s = sinks();
  MutexLock lock(s.mu);
  write_console(rec);
  if (s.file.is_open()) write_jsonl(s.file, rec);
  if (rec.level >= LogLevel::kWarn) {
    s.ring.push_back(std::move(rec));
    while (s.ring.size() > s.ring_capacity) s.ring.pop_front();
  }
}

}  // namespace detail

}  // namespace dassa
