#include "dassa/common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace dassa {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_out_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const double secs = std::chrono::duration<double>(now).count();
  std::lock_guard<std::mutex> lock(g_out_mu);
  std::fprintf(stderr, "[dassa %s %.3f] %s\n", level_name(level), secs,
               msg.c_str());
}

}  // namespace dassa
