#include "dassa/core/haee.hpp"

#include <memory>

#include "dassa/common/counters.hpp"
#include "dassa/common/trace.hpp"

namespace dassa::core {

namespace {

constexpr int kHaloUpTag = 9001;    // my top rows -> previous rank
constexpr int kHaloDownTag = 9002;  // my bottom rows -> next rank

io::ParallelReadResult read_block(mpi::Comm& comm, const io::Vca& vca,
                                  const EngineConfig& config) {
  switch (config.read_method) {
    case ReadMethod::kCollectivePerFile:
      return io::read_vca_collective_per_file(comm, vca, config.io_cost);
    case ReadMethod::kCommunicationAvoiding:
      return io::read_vca_comm_avoiding(comm, vca, config.io_cost);
    case ReadMethod::kDirectPerRank:
      return io::read_vca_direct_per_rank(comm, vca, config.io_cost);
  }
  throw InvalidArgument("unknown read method");
}

/// Gather per-rank output rows onto rank 0 in rank order.
Array2D gather_output(mpi::Comm& comm, const Array2D& mine,
                      std::size_t global_rows) {
  const auto parts = comm.gatherv(std::span<const double>(mine.data), 0);
  if (comm.rank() != 0) return {};
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  DASSA_CHECK(global_rows > 0 && total % global_rows == 0,
              "gathered output does not tile the global row count");
  Array2D out(Shape2D{global_rows, total / global_rows});
  std::size_t off = 0;
  for (const auto& p : parts) {
    std::copy(p.begin(), p.end(),
              out.data.begin() + static_cast<std::ptrdiff_t>(off));
    off += p.size();
  }
  return out;
}

/// Shared driver: read + halo, then hand the block to `compute`, then
/// gather. `compute` returns the rank-local output rows.
EngineReport run_engine(
    const EngineConfig& config, const io::Vca& vca,
    const std::function<Array2D(RankContext&)>& compute,
    std::size_t extra_bytes_per_rank) {
  const int world = config.world_size();
  const Shape2D global = vca.shape();
  global_counters().add(counters::kHaeeRuns);
  global_counters().add(counters::kHaeeRanksLaunched,
                        static_cast<std::uint64_t>(world));

  std::vector<StageTimes> rank_stages(static_cast<std::size_t>(world));
  std::vector<std::uint64_t> rank_peak(static_cast<std::size_t>(world), 0);
  Array2D gathered;
  mpi::ClusterTelemetry cluster;

  const mpi::RunReport run_report = mpi::Runtime::run(
      world, config.net_cost, [&](mpi::Comm& comm) {
        StageTimes& stages =
            rank_stages[static_cast<std::size_t>(comm.rank())];

        LocalBlock block;
        std::uint64_t read_bytes = 0;
        {
          StageScope scope(stages, "read");
          DASSA_TRACE_SPAN("haee", "haee.read");
          const io::ParallelReadResult read = read_block(comm, vca, config);
          read_bytes = read.data.size() * sizeof(double);
          block = config.halo_mode == HaloMode::kExchange
                      ? build_local_block(comm, read, global,
                                          config.halo_channels)
                      : build_local_block_overlap(comm, vca, read, global,
                                                  config.halo_channels,
                                                  config.io_cost);
        }

        Array2D mine;
        {
          StageScope scope(stages, "compute");
          DASSA_TRACE_SPAN("haee", "haee.apply");
          RankContext ctx{comm, block, config.threads_per_rank()};
          mine = compute(ctx);
        }

        rank_peak[static_cast<std::size_t>(comm.rank())] =
            (block.data.size() + mine.data.size()) * sizeof(double) +
            extra_bytes_per_rank;

        if (!config.output_path.empty()) {
          StageScope scope(stages, "write");
          DASSA_TRACE_SPAN("haee", "haee.write");
          // Output column count can differ from the input's (row UDFs
          // choose their own length); agree on the maximum, which all
          // non-empty ranks share.
          const auto out_cols = static_cast<std::size_t>(
              comm.allreduce<std::uint64_t>(
                  mine.shape.cols,
                  [](std::uint64_t a, std::uint64_t b) {
                    return std::max(a, b);
                  }));
          io::Dash5Header out_header;
          out_header.shape = {global.rows, out_cols};
          out_header.global = vca.global_meta();
          const Range owned{block.global_row0 + block.owned_local.begin,
                            block.global_row0 + block.owned_local.end};
          io::write_dash5_distributed(comm, config.output_path, out_header,
                                      owned, mine.data, config.io_cost);
        }

        if (config.gather_output) {
          StageScope scope(stages, "write");
          DASSA_TRACE_SPAN("haee", "haee.gather");
          Array2D out = gather_output(comm, mine, global.rows);
          if (comm.rank() == 0) gathered = std::move(out);
        }

        // Per-rank telemetry cannot come from the process-global
        // counters (rank threads share them); each rank assembles its
        // own view and a real gatherv reduces it onto rank 0.
        mpi::RankTelemetry mine_t;
        mine_t.counters["haee.read_bytes"] = read_bytes;
        mine_t.counters["haee.rows_owned"] = static_cast<std::uint64_t>(
            block.owned_local.end - block.owned_local.begin);
        mine_t.counters["haee.output_values"] =
            static_cast<std::uint64_t>(mine.data.size());
        const mpi::CommStats& cs = comm.stats();
        mine_t.counters["mpi.bytes_sent"] = cs.bytes_sent;
        mine_t.counters["mpi.bytes_received"] = cs.bytes_received;
        mine_t.counters["mpi.p2p_messages"] = cs.p2p_sends + cs.p2p_recvs;
        LatencyHistogram stage_hist;
        for (const auto& [name, secs] : stages.stages()) {
          const auto ns = static_cast<std::uint64_t>(secs * 1e9);
          mine_t.counters["haee.stage." + name + "_ns"] = ns;
          stage_hist.record_ns(ns);
        }
        mine_t.hists["haee.stage_ns"] = stage_hist.snapshot();
        mpi::ClusterTelemetry reduced =
            mpi::reduce_telemetry(comm, mine_t, 0);
        if (comm.rank() == 0) cluster = std::move(reduced);
      });

  EngineReport report;
  report.output = std::move(gathered);
  report.world_size = world;
  report.threads_per_rank = config.threads_per_rank();
  report.comm = run_report.aggregate();
  // Stage walls: max over ranks (the paper's figures report the slowest
  // rank's stage times).
  for (const auto& stages : rank_stages) {
    for (const auto& [name, secs] : stages.stages()) {
      if (secs > report.stages.get(name)) {
        StageTimes tmp;
        tmp.add(name, secs - report.stages.get(name));
        report.stages.merge(tmp);
      }
    }
  }
  // Memory model: a node hosts 1 rank under kHybrid and cores_per_node
  // ranks under kMpiPerCore.
  std::uint64_t max_rank_peak = 0;
  for (std::uint64_t b : rank_peak) max_rank_peak = std::max(max_rank_peak, b);
  const std::uint64_t ranks_per_node =
      config.mode == EngineMode::kHybrid
          ? 1
          : static_cast<std::uint64_t>(config.cores_per_node);
  report.modeled_peak_bytes_per_node = max_rank_peak * ranks_per_node;
  report.telemetry = std::move(cluster);
  return report;
}

}  // namespace

LocalBlock build_local_block(mpi::Comm& comm,
                             const io::ParallelReadResult& read,
                             Shape2D global, std::size_t halo) {
  DASSA_TRACE_SPAN("haee", "haee.ghost_exchange");
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t cols = read.shape.cols;

  std::size_t halo_lo = 0;
  std::size_t halo_hi = 0;
  if (halo > 0 && p > 1) {
    DASSA_CHECK(halo <= global.rows / static_cast<std::size_t>(p),
                "ghost zone wider than the smallest channel partition");
    halo_lo = (rank > 0) ? halo : 0;
    halo_hi = (rank < p - 1) ? halo : 0;
    global_counters().add(counters::kHaeeHaloExchanges,
                          (rank > 0 ? 1u : 0u) + (rank < p - 1 ? 1u : 0u));

    // Buffered sends first, then receives: deadlock-free point-to-point
    // ghost-zone exchange with both neighbours.
    if (rank > 0) {
      comm.send(std::span<const double>(read.data.data(), halo * cols),
                rank - 1, kHaloUpTag);
    }
    if (rank < p - 1) {
      comm.send(std::span<const double>(
                    read.data.data() + (read.rows.size() - halo) * cols,
                    halo * cols),
                rank + 1, kHaloDownTag);
    }
  }

  LocalBlock block;
  block.block_shape = {halo_lo + read.rows.size() + halo_hi, cols};
  block.global_row0 = read.rows.begin - halo_lo;
  block.owned_local = Range{halo_lo, halo_lo + read.rows.size()};
  block.global_shape = global;
  block.data.resize(block.block_shape.size());

  if (halo_lo > 0) {
    const std::vector<double> top = comm.recv<double>(rank - 1, kHaloDownTag);
    DASSA_CHECK(top.size() == halo_lo * cols, "halo size mismatch (top)");
    std::copy(top.begin(), top.end(), block.data.begin());
  }
  std::copy(read.data.begin(), read.data.end(),
            block.data.begin() + static_cast<std::ptrdiff_t>(halo_lo * cols));
  if (halo_hi > 0) {
    const std::vector<double> bottom =
        comm.recv<double>(rank + 1, kHaloUpTag);
    DASSA_CHECK(bottom.size() == halo_hi * cols,
                "halo size mismatch (bottom)");
    std::copy(bottom.begin(), bottom.end(),
              block.data.begin() +
                  static_cast<std::ptrdiff_t>(
                      (halo_lo + read.rows.size()) * cols));
  }
  return block;
}

LocalBlock build_local_block_overlap(mpi::Comm& comm, const io::Vca& vca,
                                     const io::ParallelReadResult& read,
                                     Shape2D global, std::size_t halo,
                                     const io::IoCostParams& io) {
  DASSA_TRACE_SPAN("haee", "haee.ghost_overlap_read");
  const std::size_t cols = read.shape.cols;
  const std::size_t halo_lo = std::min(halo, read.rows.begin);
  const std::size_t halo_hi =
      std::min(halo, global.rows - read.rows.end);

  LocalBlock block;
  block.block_shape = {halo_lo + read.rows.size() + halo_hi, cols};
  block.global_row0 = read.rows.begin - halo_lo;
  block.owned_local = Range{halo_lo, halo_lo + read.rows.size()};
  block.global_shape = global;
  block.data.resize(block.block_shape.size());

  // Model charge: one storage request per (halo read x member piece),
  // all ranks hitting the files concurrently.
  const auto charge = [&](const Slab2D& slab) {
    global_counters().add(counters::kHaeeHaloOverlapReads);
    for (const io::VcaPiece& piece : vca.resolve(slab)) {
      comm.charge_modeled_seconds(io.shared_call_cost(
          piece.slab.size() * sizeof(double), comm.size()));
    }
  };
  if (halo_lo > 0) {
    const Slab2D slab{block.global_row0, 0, halo_lo, cols};
    charge(slab);
    const std::vector<double> top = vca.read_slab(slab);
    std::copy(top.begin(), top.end(), block.data.begin());
  }
  std::copy(read.data.begin(), read.data.end(),
            block.data.begin() + static_cast<std::ptrdiff_t>(halo_lo * cols));
  if (halo_hi > 0) {
    const Slab2D slab{read.rows.end, 0, halo_hi, cols};
    charge(slab);
    const std::vector<double> bottom = vca.read_slab(slab);
    std::copy(bottom.begin(), bottom.end(),
              block.data.begin() +
                  static_cast<std::ptrdiff_t>(
                      (halo_lo + read.rows.size()) * cols));
  }
  return block;
}

EngineReport run_cells(const EngineConfig& config, const io::Vca& vca,
                       const ScalarUdfFactory& factory) {
  return run_engine(
      config, vca,
      [&](RankContext& ctx) -> Array2D {
        const ScalarUdf udf = factory(ctx);
        if (ctx.threads > 1) {
          ThreadPool pool(static_cast<std::size_t>(ctx.threads));
          return apply_cells_mt(ctx.block, udf, pool);
        }
        return apply_cells_serial(ctx.block, udf);
      },
      0);
}

EngineReport run_rows(const EngineConfig& config, const io::Vca& vca,
                      const RowUdfFactory& factory,
                      std::size_t extra_bytes_per_rank) {
  return run_engine(
      config, vca,
      [&](RankContext& ctx) -> Array2D {
        const RowUdf udf = factory(ctx);
        if (ctx.threads > 1) {
          ThreadPool pool(static_cast<std::size_t>(ctx.threads));
          return apply_rows_mt(ctx.block, udf, pool);
        }
        return apply_rows_serial(ctx.block, udf);
      },
      extra_bytes_per_rank);
}

}  // namespace dassa::core
