#include "dassa/core/apply.hpp"

#include <omp.h>

#include <cstring>

#include "dassa/common/counters.hpp"
#include "dassa/common/trace.hpp"

namespace dassa::core {

namespace {

/// Make the stencil for linearised owned-cell index `i`.
Stencil stencil_at(const LocalBlock& block, std::size_t i) {
  const std::size_t cols = block.block_shape.cols;
  const std::size_t local_row = block.owned_local.begin + i / cols;
  const std::size_t col = i % cols;
  return Stencil(block.data.data(), block.block_shape, block.global_row0,
                 local_row, col, block.global_shape);
}

std::size_t owned_cell_count(const LocalBlock& block) {
  return block.owned_rows() * block.block_shape.cols;
}

void validate(const LocalBlock& block) {
  DASSA_CHECK(block.data.size() == block.block_shape.size(),
              "local block data does not match its shape");
  DASSA_CHECK(block.owned_local.end <= block.block_shape.rows,
              "owned range exceeds local block");
}

Array2D rows_from_results(const LocalBlock& block,
                          std::vector<std::vector<double>>& results) {
  const std::size_t rows = results.size();
  const std::size_t out_cols = rows == 0 ? 0 : results.front().size();
  Array2D out(Shape2D{rows, out_cols});
  for (std::size_t r = 0; r < rows; ++r) {
    DASSA_CHECK(results[r].size() == out_cols,
                "row UDF returned inconsistent lengths");
    std::copy(results[r].begin(), results[r].end(),
              out.data.begin() + static_cast<std::ptrdiff_t>(r * out_cols));
  }
  (void)block;
  return out;
}

Stencil row_stencil(const LocalBlock& block, std::size_t owned_row) {
  return Stencil(block.data.data(), block.block_shape, block.global_row0,
                 block.owned_local.begin + owned_row, 0, block.global_shape);
}

// Telemetry progress hooks: one registry add per apply call (or per
// pool chunk), so the sampler can tell a busy pipeline from a stalled
// one without taxing the per-cell hot loop.
void charge_cells(std::size_t n) {
  global_counters().add(counters::kTelemetryCellsProcessed,
                        static_cast<std::uint64_t>(n));
}

void charge_rows(std::size_t n) {
  global_counters().add(counters::kTelemetryRowsProcessed,
                        static_cast<std::uint64_t>(n));
}

}  // namespace

Array2D apply_cells_serial(const LocalBlock& block, const ScalarUdf& udf) {
  validate(block);
  const std::size_t n = owned_cell_count(block);
  Array2D out(Shape2D{block.owned_rows(), block.block_shape.cols});
  for (std::size_t i = 0; i < n; ++i) {
    out.data[i] = udf(stencil_at(block, i));
  }
  charge_cells(n);
  return out;
}

Array2D apply_cells_mt(const LocalBlock& block, const ScalarUdf& udf,
                       ThreadPool& pool) {
  validate(block);
  const std::size_t n = owned_cell_count(block);
  Array2D out(Shape2D{block.owned_rows(), block.block_shape.cols});

  // Algorithm 1: split the linearised cells statically, run the UDF
  // into a per-thread result vector Rp, then insert each Rp into R at
  // its prefix offset. With a static schedule each thread's chunk is
  // contiguous, so the prefix offset is the chunk start.
  pool.parallel_for(n, [&](std::size_t /*thread*/, std::size_t begin,
                           std::size_t end) {
    DASSA_TRACE_SPAN("haee", "haee.apply_cells_chunk");
    std::vector<double> rp;  // result vector per thread
    rp.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      rp.push_back(udf(stencil_at(block, i)));
    }
    std::memcpy(out.data.data() + begin, rp.data(),
                rp.size() * sizeof(double));  // R[p[h-1] : p[h]] = Rp
    charge_cells(end - begin);
  });
  return out;
}

Array2D apply_cells_mt_direct(const LocalBlock& block, const ScalarUdf& udf,
                              ThreadPool& pool) {
  validate(block);
  const std::size_t n = owned_cell_count(block);
  Array2D out(Shape2D{block.owned_rows(), block.block_shape.cols});
  pool.parallel_for(n, [&](std::size_t /*thread*/, std::size_t begin,
                           std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out.data[i] = udf(stencil_at(block, i));
    }
    charge_cells(end - begin);
  });
  return out;
}

Array2D apply_cells_omp(const LocalBlock& block, const ScalarUdf& udf,
                        int threads) {
  validate(block);
  const std::size_t n = owned_cell_count(block);
  Array2D out(Shape2D{block.owned_rows(), block.block_shape.cols});

  // Algorithm 1 verbatim, with OpenMP primitives: per-thread result
  // vectors, a barrier, a single-thread prefix pass, then the merge.
  const int team = threads > 0 ? threads : omp_get_max_threads();
  std::vector<std::vector<double>> rp(static_cast<std::size_t>(team));
  std::vector<std::size_t> prefix(static_cast<std::size_t>(team) + 1, 0);

#pragma omp parallel num_threads(team)
  {
    const std::size_t h = static_cast<std::size_t>(omp_get_thread_num());
    auto& mine = rp[h];
#pragma omp for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      mine.push_back(udf(stencil_at(block, static_cast<std::size_t>(i))));
    }
    prefix[h + 1] = mine.size();
#pragma omp barrier
#pragma omp single
    for (std::size_t t = 1; t <= static_cast<std::size_t>(team); ++t) {
      prefix[t] += prefix[t - 1];
    }
    std::memcpy(out.data.data() + prefix[h], mine.data(),
                mine.size() * sizeof(double));
  }
  charge_cells(n);
  return out;
}

Array2D apply_rows_serial(const LocalBlock& block, const RowUdf& udf) {
  validate(block);
  std::vector<std::vector<double>> results(block.owned_rows());
  for (std::size_t r = 0; r < results.size(); ++r) {
    results[r] = udf(row_stencil(block, r));
  }
  charge_rows(results.size());
  return rows_from_results(block, results);
}

Array2D apply_rows_mt(const LocalBlock& block, const RowUdf& udf,
                      ThreadPool& pool) {
  validate(block);
  std::vector<std::vector<double>> results(block.owned_rows());
  pool.parallel_for(results.size(), [&](std::size_t /*thread*/,
                                        std::size_t begin, std::size_t end) {
    DASSA_TRACE_SPAN("haee", "haee.apply_rows_chunk");
    for (std::size_t r = begin; r < end; ++r) {
      results[r] = udf(row_stencil(block, r));
    }
    charge_rows(end - begin);
  });
  return rows_from_results(block, results);
}

Array2D apply_rows_omp(const LocalBlock& block, const RowUdf& udf,
                       int threads) {
  validate(block);
  const int team = threads > 0 ? threads : omp_get_max_threads();
  std::vector<std::vector<double>> results(block.owned_rows());
#pragma omp parallel for schedule(static) num_threads(team)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(results.size());
       ++r) {
    results[static_cast<std::size_t>(r)] =
        udf(row_stencil(block, static_cast<std::size_t>(r)));
  }
  charge_rows(results.size());
  return rows_from_results(block, results);
}

}  // namespace dassa::core
