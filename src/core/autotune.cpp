#include "dassa/core/autotune.hpp"

#include <algorithm>
#include <cmath>

#include "dassa/common/timer.hpp"
#include "dassa/core/apply.hpp"

namespace dassa::core {

namespace {

/// Per-rank modeled I/O + communication seconds for one read strategy,
/// mirroring the instrumented implementations in src/io/par_read.cpp.
double modeled_io_seconds(const ClusterSpec& cluster,
                          const WorkloadSpec& w, int ranks) {
  const double p = static_cast<double>(ranks);
  const double n = static_cast<double>(w.file_count);
  const double file_b = static_cast<double>(w.file_bytes);
  const double reads_per_rank = std::ceil(n / p);
  const double block_bytes =
      static_cast<double>(w.data_shape.size()) * sizeof(double) / p;

  switch (w.read) {
    case ReadMethod::kCommunicationAvoiding: {
      // Whole-file reads + one all-to-all: each rank's file bytes leave
      // once and its block arrives once. All ranks read at once, so
      // they share the storage system's aggregate bandwidth.
      const double io =
          reads_per_rank *
          cluster.io.call_cost(static_cast<std::size_t>(file_b), ranks);
      const double exchanged = 2.0 * reads_per_rank * file_b;
      const double msgs = 2.0 * std::max(0.0, p - 1.0);
      const double net =
          msgs * cluster.net.alpha_seconds +
          exchanged / cluster.net.beta_bytes_per_second;
      return io + net;
    }
    case ReadMethod::kCollectivePerFile: {
      // Aggregator reads + every file broadcast through every rank.
      const double io =
          reads_per_rank *
          cluster.io.call_cost(static_cast<std::size_t>(file_b), ranks);
      const double net =
          n * 2.0 * cluster.net.message_cost(static_cast<std::size_t>(file_b));
      return io + net;
    }
    case ReadMethod::kDirectPerRank: {
      // Every rank slabs every file; all ranks contend on each file.
      const double per_call = cluster.io.shared_call_cost(
          static_cast<std::size_t>(block_bytes / std::max(1.0, n)), ranks);
      return n * per_call;
    }
  }
  return 0.0;
}

}  // namespace

TunePoint predict(const ClusterSpec& cluster, const WorkloadSpec& workload,
                  int nodes) {
  DASSA_CHECK(nodes >= 1, "node count must be >= 1");
  const int ranks = workload.mode == EngineMode::kHybrid
                        ? nodes
                        : nodes * cluster.cores_per_node;
  const double total_cores =
      static_cast<double>(nodes) * cluster.cores_per_node;

  TunePoint point;
  point.nodes = nodes;
  // Compute: work divides over all cores in both modes (threads under
  // HAEE, ranks under MPI-per-core); the slowest core carries the
  // ceiling share.
  const double units_per_core =
      std::ceil(static_cast<double>(workload.work_units) / total_cores);
  point.compute_seconds = units_per_core * workload.seconds_per_unit;
  point.io_seconds = modeled_io_seconds(cluster, workload, ranks);
  return point;
}

TuneResult autotune_nodes(const ClusterSpec& cluster,
                          const WorkloadSpec& workload) {
  DASSA_CHECK(cluster.max_nodes >= 1, "cluster must have at least 1 node");
  DASSA_CHECK(workload.work_units >= 1, "workload has no work units");

  TuneResult result;
  // Geometric sweep first...
  std::vector<int> candidates;
  for (int n = 1; n <= cluster.max_nodes; n *= 2) candidates.push_back(n);
  if (candidates.back() != cluster.max_nodes) {
    candidates.push_back(cluster.max_nodes);
  }
  int best = 1;
  double best_total = -1.0;
  for (int n : candidates) {
    const TunePoint p = predict(cluster, workload, n);
    result.sweep.push_back(p);
    if (best_total < 0.0 || p.total() < best_total) {
      best_total = p.total();
      best = n;
    }
  }
  // ...then refine linearly around the geometric minimum.
  const int lo = std::max(1, best / 2 + 1);
  const int hi = std::min(cluster.max_nodes, best * 2 - 1);
  const int step = std::max(1, (hi - lo) / 16);
  for (int n = lo; n <= hi; n += step) {
    const TunePoint p = predict(cluster, workload, n);
    if (p.total() < best_total) {
      best_total = p.total();
      best = n;
    }
  }
  result.best_nodes = best;
  result.best_seconds = best_total;

  // Knee point over the geometric sweep: stop doubling once a doubling
  // stops buying kKneeSpeedup (the paper's "best efficiency" reading of
  // its 364-node sweet spot).
  result.recommended_nodes = result.sweep.front().nodes;
  result.recommended_seconds = result.sweep.front().total();
  for (std::size_t i = 0; i + 1 < result.sweep.size(); ++i) {
    const double speedup =
        result.sweep[i].total() / result.sweep[i + 1].total();
    if (speedup < TuneResult::kKneeSpeedup) break;
    result.recommended_nodes = result.sweep[i + 1].nodes;
    result.recommended_seconds = result.sweep[i + 1].total();
  }
  // The linear refinement can find a faster point below the geometric
  // knee; never recommend more nodes than the fastest configuration.
  if (result.recommended_nodes > result.best_nodes) {
    result.recommended_nodes = result.best_nodes;
    result.recommended_seconds = result.best_seconds;
  }
  return result;
}

double calibrate_row_udf(const io::ArraySource& source, const RowUdf& udf,
                         std::size_t sample_rows) {
  const Shape2D shape = source.shape();
  DASSA_CHECK(shape.rows >= 1, "cannot calibrate on an empty array");
  sample_rows = std::max<std::size_t>(1, std::min(sample_rows, shape.rows));

  // Sample rows spread across the array (channels can differ in
  // content but not in per-channel cost for DasLib chains).
  double seconds = 0.0;
  for (std::size_t i = 0; i < sample_rows; ++i) {
    const std::size_t row = i * (shape.rows - 1) /
                            std::max<std::size_t>(1, sample_rows - 1);
    const std::vector<double> data =
        source.read_slab(Slab2D{row, 0, 1, shape.cols});
    const Array2D one(Shape2D{1, shape.cols}, data);
    const LocalBlock block = LocalBlock::whole(one);
    WallTimer timer;
    (void)apply_rows_serial(block, udf);
    seconds += timer.seconds();
  }
  return seconds / static_cast<double>(sample_rows);
}

WorkloadSpec workload_for_rows(const io::Vca& vca, double seconds_per_unit) {
  WorkloadSpec w;
  w.data_shape = vca.shape();
  w.file_count = vca.members().size();
  w.file_bytes = vca.members().front().shape.size() * sizeof(double);
  w.work_units = vca.shape().rows;
  w.seconds_per_unit = seconds_per_unit;
  return w;
}

}  // namespace dassa::core
