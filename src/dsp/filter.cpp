#include "dassa/dsp/filter.hpp"

#include <algorithm>

#include "dassa/common/error.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/dsp/fft.hpp"

namespace dassa::dsp {

namespace {

/// Normalise coefficients to a[0] == 1 and equal lengths n.
struct Normalised {
  std::vector<double> b;
  std::vector<double> a;
  std::size_t n;  // max(|a|, |b|)
};

Normalised normalise(const FilterCoeffs& f) {
  DASSA_CHECK(!f.a.empty() && !f.b.empty(), "filter coefficients empty");
  DASSA_CHECK(f.a[0] != 0.0, "a[0] must be non-zero");
  Normalised out;
  out.n = std::max(f.a.size(), f.b.size());
  out.b.assign(out.n, 0.0);
  out.a.assign(out.n, 0.0);
  for (std::size_t i = 0; i < f.b.size(); ++i) out.b[i] = f.b[i] / f.a[0];
  for (std::size_t i = 0; i < f.a.size(); ++i) out.a[i] = f.a[i] / f.a[0];
  return out;
}

/// Direct-form II transposed pass over x[0..n) into y[0..n) with state
/// z[0..f.n-1). Each step reads x[i] before writing y[i], so x and y
/// may alias (in-place filtering), which filtfilt exploits to run both
/// passes inside one workspace buffer.
void run_df2t_raw(const Normalised& f, const double* x, std::size_t n,
                  double* y, double* z) {
  const std::size_t ns = f.n - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = f.b[0] * xi + (ns > 0 ? z[0] : 0.0);
    for (std::size_t s = 0; s + 1 < ns; ++s) {
      z[s] = f.b[s + 1] * xi + z[s + 1] - f.a[s + 1] * yi;
    }
    if (ns > 0) {
      z[ns - 1] = f.b[ns] * xi - f.a[ns] * yi;
    }
    y[i] = yi;
  }
}

std::vector<double> run_df2t(const Normalised& f, std::span<const double> x,
                             std::vector<double>& z) {
  DASSA_CHECK(z.size() == f.n - 1, "initial state has wrong length");
  std::vector<double> y(x.size());
  run_df2t_raw(f, x.data(), x.size(), y.data(), z.data());
  return y;
}

std::vector<double> steady_state_zi(const Normalised& nf) {
  // Direct-form II transposed steady state for unit input. With
  // y_ss = sum(b)/sum(a), the state recurrence at steady state is
  //   z[i] = b[i+1] - a[i+1]*y_ss + z[i+1],
  // solved by back-substitution. (For filters with sum(a) == 0 --
  // not produced by the Butterworth designer -- y_ss is taken as 0.)
  const std::size_t ns = nf.n - 1;
  std::vector<double> zi(ns, 0.0);
  if (ns == 0) return zi;
  double sum_b = 0.0;
  double sum_a = 0.0;
  for (double v : nf.b) sum_b += v;
  for (double v : nf.a) sum_a += v;
  const double y_ss = (sum_a != 0.0) ? sum_b / sum_a : 0.0;
  zi[ns - 1] = nf.b[ns] - nf.a[ns] * y_ss;
  for (std::size_t i = ns - 1; i-- > 0;) {
    zi[i] = nf.b[i + 1] - nf.a[i + 1] * y_ss + zi[i + 1];
  }
  return zi;
}

}  // namespace

std::vector<double> lfilter(const FilterCoeffs& f, std::span<const double> x) {
  const Normalised nf = normalise(f);
  std::vector<double> z(nf.n - 1, 0.0);
  return run_df2t(nf, x, z);
}

std::vector<double> lfilter(const FilterCoeffs& f, std::span<const double> x,
                            std::vector<double>& zi) {
  const Normalised nf = normalise(f);
  return run_df2t(nf, x, zi);
}

std::vector<double> lfilter_zi(const FilterCoeffs& f) {
  return steady_state_zi(normalise(f));
}

std::vector<double> filtfilt(const FilterCoeffs& f,
                             std::span<const double> x) {
  DASSA_TRACE_SPAN("dsp", "dsp.filtfilt");
  const Normalised nf = normalise(f);
  const std::size_t pad = 3 * (nf.n - 1);
  DASSA_CHECK(x.size() > pad,
              "filtfilt input must be longer than 3*(filter order)");
  const std::size_t ns = nf.n - 1;
  const std::size_t ext_len = x.size() + 2 * pad;

  // The extended signal and the filter state live in the per-thread
  // workspace arena; both passes filter the buffer in place, so the
  // only per-call allocations left are the (order-sized) zi vector and
  // the returned output.
  FftWorkspace& ws = fft_workspace();
  std::vector<double>& ext = ws.rbuf(3, ext_len);
  std::vector<double>& state = ws.rbuf(4, ns);

  // Odd reflection about the end points removes edge transients.
  for (std::size_t i = 0; i < pad; ++i) {
    ext[i] = 2.0 * x[0] - x[pad - i];
  }
  std::copy(x.begin(), x.end(),
            ext.begin() + static_cast<std::ptrdiff_t>(pad));
  for (std::size_t i = 0; i < pad; ++i) {
    ext[pad + x.size() + i] = 2.0 * x[x.size() - 1] - x[x.size() - 2 - i];
  }

  const std::vector<double> zi = steady_state_zi(nf);

  // Forward pass (in place).
  for (std::size_t i = 0; i < ns; ++i) state[i] = zi[i] * ext.front();
  run_df2t_raw(nf, ext.data(), ext_len, ext.data(), state.data());

  // Backward pass (in place on the reversed signal).
  std::reverse(ext.begin(), ext.end());
  for (std::size_t i = 0; i < ns; ++i) state[i] = zi[i] * ext.front();
  run_df2t_raw(nf, ext.data(), ext_len, ext.data(), state.data());
  std::reverse(ext.begin(), ext.end());

  return {ext.begin() + static_cast<std::ptrdiff_t>(pad),
          ext.begin() + static_cast<std::ptrdiff_t>(pad + x.size())};
}

}  // namespace dassa::dsp
