#include "dassa/dsp/filter.hpp"

#include <algorithm>

#include "dassa/common/error.hpp"

namespace dassa::dsp {

namespace {

/// Normalise coefficients to a[0] == 1 and equal lengths n.
struct Normalised {
  std::vector<double> b;
  std::vector<double> a;
  std::size_t n;  // max(|a|, |b|)
};

Normalised normalise(const FilterCoeffs& f) {
  DASSA_CHECK(!f.a.empty() && !f.b.empty(), "filter coefficients empty");
  DASSA_CHECK(f.a[0] != 0.0, "a[0] must be non-zero");
  Normalised out;
  out.n = std::max(f.a.size(), f.b.size());
  out.b.assign(out.n, 0.0);
  out.a.assign(out.n, 0.0);
  for (std::size_t i = 0; i < f.b.size(); ++i) out.b[i] = f.b[i] / f.a[0];
  for (std::size_t i = 0; i < f.a.size(); ++i) out.a[i] = f.a[i] / f.a[0];
  return out;
}

std::vector<double> run_df2t(const Normalised& f, std::span<const double> x,
                             std::vector<double>& z) {
  const std::size_t ns = f.n - 1;
  DASSA_CHECK(z.size() == ns, "initial state has wrong length");
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    const double yi = f.b[0] * xi + (ns > 0 ? z[0] : 0.0);
    for (std::size_t s = 0; s + 1 < ns; ++s) {
      z[s] = f.b[s + 1] * xi + z[s + 1] - f.a[s + 1] * yi;
    }
    if (ns > 0) {
      z[ns - 1] = f.b[ns] * xi - f.a[ns] * yi;
    }
    y[i] = yi;
  }
  return y;
}

}  // namespace

std::vector<double> lfilter(const FilterCoeffs& f, std::span<const double> x) {
  const Normalised nf = normalise(f);
  std::vector<double> z(nf.n - 1, 0.0);
  return run_df2t(nf, x, z);
}

std::vector<double> lfilter(const FilterCoeffs& f, std::span<const double> x,
                            std::vector<double>& zi) {
  const Normalised nf = normalise(f);
  return run_df2t(nf, x, zi);
}

std::vector<double> lfilter_zi(const FilterCoeffs& f) {
  // Direct-form II transposed steady state for unit input. With
  // y_ss = sum(b)/sum(a), the state recurrence at steady state is
  //   z[i] = b[i+1] - a[i+1]*y_ss + z[i+1],
  // solved by back-substitution. (For filters with sum(a) == 0 --
  // not produced by the Butterworth designer -- y_ss is taken as 0.)
  const Normalised nf = normalise(f);
  const std::size_t ns = nf.n - 1;
  std::vector<double> zi(ns, 0.0);
  if (ns == 0) return zi;
  double sum_b = 0.0;
  double sum_a = 0.0;
  for (double v : nf.b) sum_b += v;
  for (double v : nf.a) sum_a += v;
  const double y_ss = (sum_a != 0.0) ? sum_b / sum_a : 0.0;
  zi[ns - 1] = nf.b[ns] - nf.a[ns] * y_ss;
  for (std::size_t i = ns - 1; i-- > 0;) {
    zi[i] = nf.b[i + 1] - nf.a[i + 1] * y_ss + zi[i + 1];
  }
  return zi;
}

std::vector<double> filtfilt(const FilterCoeffs& f,
                             std::span<const double> x) {
  const Normalised nf = normalise(f);
  const std::size_t pad = 3 * (nf.n - 1);
  DASSA_CHECK(x.size() > pad,
              "filtfilt input must be longer than 3*(filter order)");

  // Odd reflection about the end points removes edge transients.
  std::vector<double> ext;
  ext.reserve(x.size() + 2 * pad);
  for (std::size_t i = 0; i < pad; ++i) {
    ext.push_back(2.0 * x[0] - x[pad - i]);
  }
  ext.insert(ext.end(), x.begin(), x.end());
  for (std::size_t i = 0; i < pad; ++i) {
    ext.push_back(2.0 * x[x.size() - 1] - x[x.size() - 2 - i]);
  }

  const std::vector<double> zi = lfilter_zi(f);

  // Forward pass.
  std::vector<double> state(zi.size());
  for (std::size_t i = 0; i < zi.size(); ++i) state[i] = zi[i] * ext.front();
  std::vector<double> fwd = run_df2t(nf, ext, state);

  // Backward pass.
  std::reverse(fwd.begin(), fwd.end());
  for (std::size_t i = 0; i < zi.size(); ++i) state[i] = zi[i] * fwd.front();
  std::vector<double> bwd = run_df2t(nf, fwd, state);
  std::reverse(bwd.begin(), bwd.end());

  return {bwd.begin() + static_cast<std::ptrdiff_t>(pad),
          bwd.begin() + static_cast<std::ptrdiff_t>(pad + x.size())};
}

}  // namespace dassa::dsp
