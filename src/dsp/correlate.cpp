#include "dassa/dsp/correlate.hpp"

#include <cmath>

#include "dassa/common/error.hpp"

namespace dassa::dsp {

double abscorr(std::span<const double> a, std::span<const double> b) {
  DASSA_CHECK(a.size() == b.size(), "abscorr requires equal lengths");
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return std::abs(dot) / std::sqrt(na * nb);
}

double abscorr(std::span<const cplx> a, std::span<const cplx> b) {
  DASSA_CHECK(a.size() == b.size(), "abscorr requires equal lengths");
  cplx dot(0.0, 0.0);
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * std::conj(b[i]);
    na += std::norm(a[i]);
    nb += std::norm(b[i]);
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return std::abs(dot) / std::sqrt(na * nb);
}

std::vector<double> xcorr_full(std::span<const double> a,
                               std::span<const double> b) {
  DASSA_CHECK(!a.empty() && !b.empty(), "xcorr of empty signal");
  const std::size_t n = a.size() + b.size() - 1;
  const std::size_t m = next_pow2(n);
  std::vector<cplx> fa(m, cplx(0, 0));
  std::vector<cplx> fb(m, cplx(0, 0));
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = cplx(a[i], 0.0);
  // Time-reverse b so that convolution computes correlation.
  for (std::size_t i = 0; i < b.size(); ++i) {
    fb[i] = cplx(b[b.size() - 1 - i], 0.0);
  }
  fft_inplace(fa);
  fft_inplace(fb);
  for (std::size_t i = 0; i < m; ++i) fa[i] *= fb[i];
  ifft_inplace(fa);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = fa[i].real();
  return out;
}

std::vector<double> xcorr_spectra(std::span<const cplx> a,
                                  std::span<const cplx> b) {
  DASSA_CHECK(a.size() == b.size(), "spectra must have equal length");
  std::vector<cplx> prod(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) prod[i] = a[i] * std::conj(b[i]);
  ifft_inplace(prod);
  std::vector<double> out(prod.size());
  for (std::size_t i = 0; i < prod.size(); ++i) out[i] = prod[i].real();
  return out;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  DASSA_CHECK(a.size() == b.size() && !a.empty(),
              "pearson requires equal non-empty lengths");
  const double n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace dassa::dsp
