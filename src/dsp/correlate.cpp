#include "dassa/dsp/correlate.hpp"

#include <algorithm>
#include <cmath>

#include "dassa/common/error.hpp"
#include "dassa/common/trace.hpp"

namespace dassa::dsp {

double abscorr(std::span<const double> a, std::span<const double> b) {
  DASSA_CHECK(a.size() == b.size(), "abscorr requires equal lengths");
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return std::abs(dot) / std::sqrt(na * nb);
}

double abscorr(std::span<const cplx> a, std::span<const cplx> b) {
  DASSA_CHECK(a.size() == b.size(), "abscorr requires equal lengths");
  cplx dot(0.0, 0.0);
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * std::conj(b[i]);
    na += std::norm(a[i]);
    nb += std::norm(b[i]);
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return std::abs(dot) / std::sqrt(na * nb);
}

std::vector<double> xcorr_full(std::span<const double> a,
                               std::span<const double> b) {
  DASSA_TRACE_SPAN("dsp", "dsp.xcorr_full");
  DASSA_CHECK(!a.empty() && !b.empty(), "xcorr of empty signal");
  const std::size_t n = a.size() + b.size() - 1;
  const std::size_t m = next_pow2(n);
  const auto plan = FftPlan::get(m);
  FftWorkspace& ws = fft_workspace();

  // Real inputs: two half-spectrum transforms of the zero-padded
  // signals instead of two full complex ones, all in workspace buffers.
  std::vector<double>& ra = ws.rbuf(0, m);
  std::vector<double>& rb = ws.rbuf(1, m);
  std::copy(a.begin(), a.end(), ra.begin());
  std::fill(ra.begin() + static_cast<std::ptrdiff_t>(a.size()), ra.end(), 0.0);
  // Time-reverse b so that convolution computes correlation.
  for (std::size_t i = 0; i < b.size(); ++i) rb[i] = b[b.size() - 1 - i];
  std::fill(rb.begin() + static_cast<std::ptrdiff_t>(b.size()), rb.end(), 0.0);

  const std::size_t bins = plan->half_bins();
  std::vector<cplx>& fa = ws.cbuf(2, bins);
  std::vector<cplx>& fb = ws.cbuf(3, bins);
  plan->forward_real(ra.data(), fa.data(), ws);
  plan->forward_real(rb.data(), fb.data(), ws);
  for (std::size_t i = 0; i < bins; ++i) fa[i] *= fb[i];

  std::vector<double>& conv = ws.rbuf(2, m);
  plan->inverse_real(fa.data(), conv.data(), ws);
  return {conv.begin(), conv.begin() + static_cast<std::ptrdiff_t>(n)};
}

std::vector<double> xcorr_spectra(std::span<const cplx> a,
                                  std::span<const cplx> b) {
  DASSA_CHECK(a.size() == b.size(), "spectra must have equal length");
  if (a.empty()) return {};
  const auto plan = FftPlan::get(a.size());
  FftWorkspace& ws = fft_workspace();
  std::vector<cplx>& prod = ws.cbuf(2, a.size());
  for (std::size_t i = 0; i < a.size(); ++i) prod[i] = a[i] * std::conj(b[i]);
  plan->inverse(prod.data(), ws);
  std::vector<double> out(prod.size());
  for (std::size_t i = 0; i < prod.size(); ++i) out[i] = prod[i].real();
  return out;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  DASSA_CHECK(a.size() == b.size() && !a.empty(),
              "pearson requires equal non-empty lengths");
  const double n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace dassa::dsp
