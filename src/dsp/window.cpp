#include "dassa/dsp/window.hpp"

#include <cmath>
#include <numbers>

#include "dassa/common/error.hpp"

namespace dassa::dsp {

namespace {
// Generalised cosine window: w[i] = a0 - a1 cos(2 pi i/(n-1))
//                                  + a2 cos(4 pi i/(n-1)).
std::vector<double> cosine_window(std::size_t n, double a0, double a1,
                                  double a2) {
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    w[i] = a0 - a1 * std::cos(2.0 * std::numbers::pi * t) +
           a2 * std::cos(4.0 * std::numbers::pi * t);
  }
  return w;
}
}  // namespace

std::vector<double> hann_window(std::size_t n) {
  return cosine_window(n, 0.5, 0.5, 0.0);
}

std::vector<double> hamming_window(std::size_t n) {
  return cosine_window(n, 0.54, 0.46, 0.0);
}

std::vector<double> blackman_window(std::size_t n) {
  return cosine_window(n, 0.42, 0.5, 0.08);
}

std::vector<double> tukey_window(std::size_t n, double alpha) {
  DASSA_CHECK(alpha >= 0.0 && alpha <= 1.0, "tukey alpha must be in [0,1]");
  std::vector<double> w(n, 1.0);
  if (n <= 1 || alpha == 0.0) return w;
  const double taper = alpha * static_cast<double>(n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    const double mirror = static_cast<double>(n - 1) - t;
    const double edge = std::min(t, mirror);
    if (edge < taper) {
      w[i] = 0.5 * (1.0 + std::cos(std::numbers::pi * (edge / taper - 1.0)));
    }
  }
  return w;
}

double bessel_i0(double x) {
  // Power-series: I0(x) = sum ((x/2)^k / k!)^2; converges quickly for
  // the beta values used in FIR design (< ~20).
  const double half = x / 2.0;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 64; ++k) {
    term *= half / static_cast<double>(k);
    const double contrib = term * term;
    sum += contrib;
    if (contrib < 1e-18 * sum) break;
  }
  return sum;
}

std::vector<double> kaiser_window(std::size_t n, double beta) {
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  const double denom = bessel_i0(beta);
  const double mid = static_cast<double>(n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = (static_cast<double>(i) - mid) / mid;
    w[i] = bessel_i0(beta * std::sqrt(std::max(0.0, 1.0 - r * r))) / denom;
  }
  return w;
}

void apply_window(std::vector<double>& x, const std::vector<double>& w) {
  DASSA_CHECK(x.size() == w.size(), "window length must match signal");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= w[i];
}

}  // namespace dassa::dsp
