#include "dassa/dsp/resample.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <numbers>
#include <utility>

#include "dassa/common/error.hpp"
#include "dassa/common/sync.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/dsp/stats.hpp"
#include "dassa/dsp/window.hpp"

namespace dassa::dsp {

namespace {

/// Kaiser-windowed sinc designs depend only on (up, down); per-channel
/// resampling in the pipelines reuses one design ~10^4 times, so
/// finished filters are shared through a read-mostly cache.
using FilterKey = std::pair<std::size_t, std::size_t>;

/// Named struct (not function-local statics) so the map carries its
/// DASSA_GUARDED_BY annotation.
struct FilterCache {
  SharedMutex mu;
  std::map<FilterKey, std::shared_ptr<const std::vector<double>>> filters
      DASSA_GUARDED_BY(mu);
};

FilterCache& filter_cache() {
  static FilterCache cache;
  return cache;
}

std::shared_ptr<const std::vector<double>> cached_resample_filter(
    std::size_t up, std::size_t down) {
  FilterCache& cache = filter_cache();
  const FilterKey key{up, down};
  auto& cells = detail::dsp_stat_cells();
  {
    ReaderLock lock(cache.mu);
    auto it = cache.filters.find(key);
    if (it != cache.filters.end()) {
      cells.resample_design_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  auto built = std::make_shared<const std::vector<double>>(
      resample_filter(up, down));
  WriterLock lock(cache.mu);
  auto [it, inserted] = cache.filters.emplace(key, std::move(built));
  if (inserted) {
    cells.resample_design_misses.fetch_add(1, std::memory_order_relaxed);
  } else {
    cells.resample_design_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

}  // namespace

std::vector<double> resample_filter(std::size_t up, std::size_t down) {
  DASSA_CHECK(up >= 1 && down >= 1, "resample factors must be positive");
  // Cutoff at the tighter of the two Nyquist limits, on the upsampled
  // grid where Nyquist corresponds to normalised frequency 1.
  const double cutoff =
      1.0 / static_cast<double>(std::max(up, down));  // (0, 1]
  const std::size_t half = 10 * std::max(up, down);
  const std::size_t n = 2 * half + 1;
  const std::vector<double> w = kaiser_window(n, 5.0);
  std::vector<double> h(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        static_cast<double>(i) - static_cast<double>(half);  // centred
    const double arg = std::numbers::pi * cutoff * t;
    const double sinc =
        (t == 0.0) ? 1.0 : std::sin(arg) / (std::numbers::pi * t);
    h[i] = ((t == 0.0) ? cutoff : sinc) * w[i];
  }
  // Normalise DC gain to `up` so zero-stuffed upsampling preserves
  // amplitude.
  double dc = 0.0;
  for (double v : h) dc += v;
  const double gain = static_cast<double>(up) / dc;
  for (double& v : h) v *= gain;
  return h;
}

std::vector<double> resample(std::span<const double> x, std::size_t up,
                             std::size_t down) {
  DASSA_TRACE_SPAN("dsp", "dsp.resample");
  DASSA_CHECK(up >= 1 && down >= 1, "resample factors must be positive");
  if (x.empty()) return {};
  if (up == down) return {x.begin(), x.end()};

  const std::shared_ptr<const std::vector<double>> h_ptr =
      cached_resample_filter(up, down);
  const std::vector<double>& h = *h_ptr;
  const std::size_t half = (h.size() - 1) / 2;  // group delay on the
                                                // upsampled grid
  const std::size_t n = x.size();
  const std::size_t out_len =
      (n * up + down - 1) / down;  // ceil(n * up / down)

  std::vector<double> y(out_len, 0.0);
  for (std::size_t m = 0; m < out_len; ++m) {
    // Output sample m sits at position m*down on the upsampled grid;
    // the filter is centred there (delay-compensated).
    const std::size_t pos = m * down + half;
    // y[m] = sum_k h[k] * xup[pos - k]; xup[j] = x[j/up] when j % up == 0.
    // Iterate only over taps hitting non-zero stuffed samples.
    const std::size_t k_min = (pos >= h.size() - 1) ? pos - (h.size() - 1) : 0;
    // First j >= k_min with j % up == 0:
    std::size_t j = ((k_min + up - 1) / up) * up;
    double acc = 0.0;
    for (; j <= pos; j += up) {
      const std::size_t src = j / up;
      if (src >= n) break;
      acc += h[pos - j] * x[src];
    }
    y[m] = acc;
  }
  return y;
}

std::vector<double> decimate(std::span<const double> x, std::size_t factor) {
  DASSA_CHECK(factor >= 1, "decimation factor must be positive");
  return resample(x, 1, factor);
}

}  // namespace dassa::dsp
