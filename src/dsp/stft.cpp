#include "dassa/dsp/stft.hpp"

#include "dassa/common/error.hpp"
#include "dassa/dsp/window.hpp"

namespace dassa::dsp {

std::vector<std::vector<cplx>> stft(std::span<const double> x,
                                    const StftParams& params) {
  DASSA_CHECK(params.window >= 2, "STFT window must hold >= 2 samples");
  DASSA_CHECK(params.hop >= 1, "STFT hop must be >= 1");
  std::vector<std::vector<cplx>> frames;
  if (x.size() < params.window) return frames;

  const std::vector<double> win =
      params.hann ? hann_window(params.window)
                  : std::vector<double>(params.window, 1.0);
  const std::size_t n_frames = (x.size() - params.window) / params.hop + 1;
  frames.resize(n_frames);

  const auto plan = FftPlan::get(params.window);
  FftWorkspace& ws = fft_workspace();
  std::vector<double> buf(params.window);
  for (std::size_t f = 0; f < n_frames; ++f) {
    const double* src = x.data() + f * params.hop;
    for (std::size_t i = 0; i < params.window; ++i) buf[i] = src[i] * win[i];
    frames[f].resize(plan->half_bins());
    plan->forward_real(buf.data(), frames[f].data(), ws);
  }
  return frames;
}

Spectrogram spectrogram(std::span<const double> x, const StftParams& params) {
  DASSA_CHECK(params.window >= 2, "window must hold >= 2 samples");
  const std::vector<std::vector<cplx>> frames = stft(x, params);
  Spectrogram out;
  const std::size_t bins = params.window / 2 + 1;
  out.shape = {frames.size(), bins};
  out.power.resize(out.shape.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    for (std::size_t b = 0; b < bins; ++b) {
      out.power[out.shape.at(f, b)] = std::norm(frames[f][b]);
    }
  }
  return out;
}

double bin_frequency_hz(std::size_t bin, std::size_t window,
                        double sampling_hz) {
  DASSA_CHECK(window >= 2, "window must hold >= 2 samples");
  return static_cast<double>(bin) * sampling_hz /
         static_cast<double>(window);
}

}  // namespace dassa::dsp
