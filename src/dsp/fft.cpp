#include "dassa/dsp/fft.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>

#include "dassa/common/error.hpp"

namespace dassa::dsp {

namespace {

/// Precomputed twiddle factors e^{-pi i k / half} for one radix-2 size.
struct Twiddles {
  explicit Twiddles(std::size_t n) : factors(n / 2) {
    for (std::size_t k = 0; k < factors.size(); ++k) {
      const double angle =
          -2.0 * std::numbers::pi * static_cast<double>(k) /
          static_cast<double>(n);
      factors[k] = cplx(std::cos(angle), std::sin(angle));
    }
  }
  std::vector<cplx> factors;
};

/// Shared twiddle cache; DasLib kernels run from many threads at once.
std::shared_ptr<const Twiddles> twiddles_for(std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t, std::shared_ptr<const Twiddles>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& entry = cache[n];
  if (!entry) entry = std::make_shared<const Twiddles>(n);
  return entry;
}

/// Iterative radix-2 Cooley-Tukey; n must be a power of two.
/// `invert` runs the conjugate transform without the 1/n scale.
void fft_radix2(std::vector<cplx>& x, bool invert) {
  const std::size_t n = x.size();
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  const auto tw = twiddles_for(n);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        cplx w = tw->factors[k * stride];
        if (invert) w = std::conj(w);
        const cplx u = x[i + k];
        const cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
      }
    }
  }
}

/// Bluestein's chirp-z transform for arbitrary n, via a radix-2
/// convolution of length >= 2n-1.
void fft_bluestein(std::vector<cplx>& x, bool invert) {
  const std::size_t n = x.size();
  const std::size_t m = next_pow2(2 * n - 1);

  // Chirp: w[k] = e^{-pi i k^2 / n} (conjugated for the inverse).
  std::vector<cplx> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    double angle = std::numbers::pi * static_cast<double>(k2) /
                   static_cast<double>(n);
    if (!invert) angle = -angle;
    chirp[k] = cplx(std::cos(angle), std::sin(angle));
  }

  std::vector<cplx> a(m, cplx(0, 0));
  std::vector<cplx> b(m, cplx(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = x[k] * chirp[k];
    b[k] = std::conj(chirp[k]);
  }
  for (std::size_t k = 1; k < n; ++k) b[m - k] = std::conj(chirp[k]);

  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2(a, true);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    x[k] = a[k] * scale * chirp[k];
  }
}

void dft_dispatch(std::vector<cplx>& x, bool invert) {
  if (x.empty()) return;
  if (is_pow2(x.size())) {
    fft_radix2(x, invert);
  } else {
    fft_bluestein(x, invert);
  }
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  DASSA_CHECK(n >= 1, "next_pow2 requires n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_inplace(std::vector<cplx>& x) { dft_dispatch(x, false); }

void ifft_inplace(std::vector<cplx>& x) {
  dft_dispatch(x, true);
  const double scale = x.empty() ? 1.0 : 1.0 / static_cast<double>(x.size());
  for (auto& v : x) v *= scale;
}

std::vector<cplx> rfft(std::span<const double> x) {
  std::vector<cplx> c(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) c[i] = cplx(x[i], 0.0);
  fft_inplace(c);
  return c;
}

std::vector<double> irfft_real(std::span<const cplx> spectrum) {
  std::vector<cplx> c(spectrum.begin(), spectrum.end());
  ifft_inplace(c);
  std::vector<double> out(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) out[i] = c[i].real();
  return out;
}

std::vector<cplx> fft(std::vector<cplx> x) {
  fft_inplace(x);
  return x;
}

std::vector<cplx> ifft(std::vector<cplx> x) {
  ifft_inplace(x);
  return x;
}

}  // namespace dassa::dsp
