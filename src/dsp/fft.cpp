#include "dassa/dsp/fft.hpp"

#include <cmath>
#include <map>
#include <numbers>

#include "dassa/common/error.hpp"
#include "dassa/common/sync.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/dsp/stats.hpp"

namespace dassa::dsp {

namespace {

// Workspace slot convention (see fft.hpp): the engine owns these two.
constexpr std::size_t kSlotBluestein = 0;
constexpr std::size_t kSlotRealPack = 1;

void count_bytes(std::size_t bytes) {
  detail::dsp_stat_cells().fft_bytes_allocated.fetch_add(
      bytes, std::memory_order_relaxed);
}

}  // namespace

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

std::vector<cplx>& FftWorkspace::cbuf(std::size_t slot, std::size_t n) {
  auto& v = cplx_.at(slot);
  if (v.capacity() < n) {
    count_bytes((n - v.capacity()) * sizeof(cplx));
    v.reserve(n);
  }
  v.resize(n);
  return v;
}

std::vector<double>& FftWorkspace::rbuf(std::size_t slot, std::size_t n) {
  auto& v = real_.at(slot);
  if (v.capacity() < n) {
    count_bytes((n - v.capacity()) * sizeof(double));
    v.reserve(n);
  }
  v.resize(n);
  return v;
}

FftWorkspace& fft_workspace() {
  thread_local FftWorkspace ws;
  return ws;
}

// ---------------------------------------------------------------------------
// Plan construction + cache
// ---------------------------------------------------------------------------

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  DASSA_CHECK(n >= 1, "FFT plan requires length >= 1");
  if (pow2_ && n_ > 1) {
    twiddles_.resize(n_ / 2);
    for (std::size_t k = 0; k < twiddles_.size(); ++k) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(n_);
      twiddles_[k] = cplx(std::cos(angle), std::sin(angle));
    }
    bitrev_.resize(n_);
    for (std::size_t i = 1, j = 0; i < n_; ++i) {
      std::size_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[i] = static_cast<std::uint32_t>(j);
    }
  }
  if (!pow2_) {
    // Bluestein: chirp c[k] = e^{-pi i k^2 / n} and the spectrum of the
    // padded filter b[k] = conj(c[|k| mod n]) -- both depend only on n,
    // so the per-call cost drops from three FFTs plus 2n sin/cos pairs
    // to two FFTs and no trigonometry.
    m_ = next_pow2(2 * n_ - 1);
    sub_ = FftPlan::get(m_);
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      // k^2 mod 2n avoids precision loss for large k.
      const std::size_t k2 = (k * k) % (2 * n_);
      const double angle = -std::numbers::pi * static_cast<double>(k2) /
                           static_cast<double>(n_);
      chirp_[k] = cplx(std::cos(angle), std::sin(angle));
    }
    chirp_spec_.assign(m_, cplx(0.0, 0.0));
    for (std::size_t k = 0; k < n_; ++k) {
      chirp_spec_[k] = std::conj(chirp_[k]);
    }
    for (std::size_t k = 1; k < n_; ++k) {
      chirp_spec_[m_ - k] = std::conj(chirp_[k]);
    }
    sub_->radix2(chirp_spec_.data(), /*invert=*/false);
  }
  if (n_ % 2 == 0) {
    // Packed real-input transform: one complex FFT of length n/2 plus
    // an O(n) recombination with these twiddles.
    const std::size_t h = n_ / 2;
    half_ = FftPlan::get(h);
    rtw_.resize(h + 1);
    for (std::size_t k = 0; k <= h; ++k) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(n_);
      rtw_[k] = cplx(std::cos(angle), std::sin(angle));
    }
  }
  count_bytes(twiddles_.capacity() * sizeof(cplx) +
              bitrev_.capacity() * sizeof(std::uint32_t) +
              chirp_.capacity() * sizeof(cplx) +
              chirp_spec_.capacity() * sizeof(cplx) +
              rtw_.capacity() * sizeof(cplx));
}

namespace {

/// Process-wide plan cache. A named struct (not two function-local
/// statics) so the map can carry its DASSA_GUARDED_BY annotation.
struct PlanCache {
  SharedMutex mu;
  std::map<std::size_t, std::shared_ptr<const FftPlan>> plans
      DASSA_GUARDED_BY(mu);
};

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<const FftPlan> FftPlan::get(std::size_t n) {
  DASSA_CHECK(n >= 1, "FFT plan requires length >= 1");
  PlanCache& cache = plan_cache();
  auto& cells = detail::dsp_stat_cells();
  {
    ReaderLock lock(cache.mu);
    auto it = cache.plans.find(n);
    if (it != cache.plans.end()) {
      cells.fft_plan_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Build outside the lock: construction recurses into get() for the
  // half-size and Bluestein sub-plans, and may be slow for large n.
  std::shared_ptr<const FftPlan> built(new FftPlan(n));
  WriterLock lock(cache.mu);
  auto [it, inserted] = cache.plans.emplace(n, std::move(built));
  if (inserted) {
    cells.fft_plan_misses.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Another thread won the race; its plan is the cached one.
    cells.fft_plan_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Complex transforms
// ---------------------------------------------------------------------------

/// Iterative radix-2 Cooley-Tukey using the precomputed permutation and
/// twiddles; `invert` runs the conjugate transform without the 1/n
/// scale.
void FftPlan::radix2(cplx* x, bool invert) const {
  const std::size_t n = n_;
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        cplx w = twiddles_[k * stride];
        if (invert) w = std::conj(w);
        const cplx u = x[i + k];
        const cplx v = x[i + k + half] * w;
        x[i + k] = u + v;
        x[i + k + half] = u - v;
      }
    }
  }
}

/// Bluestein forward transform as a convolution against the cached
/// chirp filter spectrum. The only per-call buffer is one workspace
/// slot of length m.
void FftPlan::bluestein_forward(cplx* x, FftWorkspace& ws) const {
  std::vector<cplx>& a = ws.cbuf(kSlotBluestein, m_);
  for (std::size_t k = 0; k < n_; ++k) a[k] = x[k] * chirp_[k];
  for (std::size_t k = n_; k < m_; ++k) a[k] = cplx(0.0, 0.0);
  sub_->radix2(a.data(), /*invert=*/false);
  for (std::size_t k = 0; k < m_; ++k) a[k] *= chirp_spec_[k];
  sub_->radix2(a.data(), /*invert=*/true);
  const double scale = 1.0 / static_cast<double>(m_);
  for (std::size_t k = 0; k < n_; ++k) {
    x[k] = a[k] * scale * chirp_[k];
  }
}

void FftPlan::forward(cplx* x, FftWorkspace& ws) const {
  if (n_ <= 1) return;
  if (pow2_) {
    radix2(x, /*invert=*/false);
  } else {
    bluestein_forward(x, ws);
  }
}

void FftPlan::inverse(cplx* x, FftWorkspace& ws) const {
  const double scale = 1.0 / static_cast<double>(n_);
  if (n_ <= 1) return;
  if (pow2_) {
    radix2(x, /*invert=*/true);
    for (std::size_t k = 0; k < n_; ++k) x[k] *= scale;
    return;
  }
  // IDFT(x) = conj(DFT(conj(x))) / n, so the cached forward chirp
  // spectrum serves both directions.
  for (std::size_t k = 0; k < n_; ++k) x[k] = std::conj(x[k]);
  bluestein_forward(x, ws);
  for (std::size_t k = 0; k < n_; ++k) x[k] = std::conj(x[k]) * scale;
}

// ---------------------------------------------------------------------------
// Real transforms (packed half-size complex trick)
// ---------------------------------------------------------------------------

void FftPlan::forward_real(const double* x, cplx* out,
                           FftWorkspace& ws) const {
  if (n_ == 1) {
    out[0] = cplx(x[0], 0.0);
    return;
  }
  if (n_ % 2 != 0) {
    // Odd lengths (necessarily Bluestein or trivial): full complex
    // transform of the real signal, keep the non-redundant half.
    std::vector<cplx>& buf = ws.cbuf(kSlotRealPack, n_);
    for (std::size_t i = 0; i < n_; ++i) buf[i] = cplx(x[i], 0.0);
    forward(buf.data(), ws);
    for (std::size_t k = 0; k < half_bins(); ++k) out[k] = buf[k];
    return;
  }
  // Pack even/odd samples into one complex signal of half the length:
  // z[j] = x[2j] + i x[2j+1]. With E/O the DFTs of the even/odd
  // subsequences, Z[k] = E[k] + i O[k] and conjugate symmetry of E and
  // O recovers X[k] = E[k] + w^k O[k] for k = 0 .. n/2.
  const std::size_t h = n_ / 2;
  std::vector<cplx>& z = ws.cbuf(kSlotRealPack, h);
  for (std::size_t j = 0; j < h; ++j) z[j] = cplx(x[2 * j], x[2 * j + 1]);
  half_->forward(z.data(), ws);
  out[0] = cplx(z[0].real() + z[0].imag(), 0.0);
  out[h] = cplx(z[0].real() - z[0].imag(), 0.0);
  for (std::size_t k = 1; k < h; ++k) {
    const cplx zk = z[k];
    const cplx zc = std::conj(z[h - k]);
    const cplx even = 0.5 * (zk + zc);
    const cplx odd = cplx(0.0, -0.5) * (zk - zc);
    out[k] = even + rtw_[k] * odd;
  }
}

void FftPlan::inverse_real(const cplx* spec, double* out,
                           FftWorkspace& ws) const {
  if (n_ == 1) {
    out[0] = spec[0].real();
    return;
  }
  if (n_ % 2 != 0) {
    // Hermitian-extend to the full spectrum and run a complex inverse.
    std::vector<cplx>& buf = ws.cbuf(kSlotRealPack, n_);
    const std::size_t hb = half_bins();
    for (std::size_t k = 0; k < hb; ++k) buf[k] = spec[k];
    for (std::size_t k = hb; k < n_; ++k) buf[k] = std::conj(spec[n_ - k]);
    inverse(buf.data(), ws);
    for (std::size_t i = 0; i < n_; ++i) out[i] = buf[i].real();
    return;
  }
  // Invert the packing of forward_real: rebuild Z[k] = E[k] + i O[k]
  // from the half spectrum, inverse-transform at half length, and
  // interleave the real/imaginary parts back into the signal.
  const std::size_t h = n_ / 2;
  std::vector<cplx>& z = ws.cbuf(kSlotRealPack, h);
  for (std::size_t k = 0; k < h; ++k) {
    const cplx xk = spec[k];
    const cplx xc = std::conj(spec[h - k]);
    const cplx even = 0.5 * (xk + xc);
    const cplx odd = std::conj(rtw_[k]) * (0.5 * (xk - xc));
    z[k] = even + cplx(0.0, 1.0) * odd;
  }
  half_->inverse(z.data(), ws);
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
}

// ---------------------------------------------------------------------------
// Free-function entry points
// ---------------------------------------------------------------------------

std::size_t next_pow2(std::size_t n) {
  DASSA_CHECK(n >= 1, "next_pow2 requires n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_inplace(std::vector<cplx>& x) {
  if (x.empty()) return;
  FftPlan::get(x.size())->forward(x.data(), fft_workspace());
}

void ifft_inplace(std::vector<cplx>& x) {
  if (x.empty()) return;
  FftPlan::get(x.size())->inverse(x.data(), fft_workspace());
}

std::vector<cplx> rfft(std::span<const double> x) {
  DASSA_TRACE_SPAN("dsp", "dsp.rfft");
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  if (n == 0) return out;
  const auto plan = FftPlan::get(n);
  plan->forward_real(x.data(), out.data(), fft_workspace());
  // Mirror the non-redundant half into the negative frequencies.
  for (std::size_t k = 1; k < (n + 1) / 2; ++k) {
    out[n - k] = std::conj(out[k]);
  }
  return out;
}

std::vector<cplx> rfft_half(std::span<const double> x) {
  DASSA_TRACE_SPAN("dsp", "dsp.rfft_half");
  if (x.empty()) return {};
  const auto plan = FftPlan::get(x.size());
  std::vector<cplx> out(plan->half_bins());
  plan->forward_real(x.data(), out.data(), fft_workspace());
  return out;
}

std::vector<double> irfft_half(std::span<const cplx> spectrum,
                               std::size_t n) {
  DASSA_TRACE_SPAN("dsp", "dsp.irfft_half");
  if (n == 0) {
    DASSA_CHECK(spectrum.empty(), "length-0 inverse of non-empty spectrum");
    return {};
  }
  const auto plan = FftPlan::get(n);
  DASSA_CHECK(spectrum.size() == plan->half_bins(),
              "irfft_half spectrum must hold n/2 + 1 bins");
  std::vector<double> out(n);
  plan->inverse_real(spectrum.data(), out.data(), fft_workspace());
  return out;
}

std::vector<std::vector<cplx>> rfft_half_batch(std::span<const double> data,
                                               std::size_t rows,
                                               std::size_t cols) {
  DASSA_TRACE_SPAN("dsp", "dsp.rfft_half_batch");
  DASSA_CHECK(data.size() == rows * cols,
              "batch buffer must hold rows * cols samples");
  std::vector<std::vector<cplx>> out(rows);
  if (rows == 0 || cols == 0) return out;
  const auto plan = FftPlan::get(cols);
  FftWorkspace& ws = fft_workspace();
  for (std::size_t r = 0; r < rows; ++r) {
    out[r].resize(plan->half_bins());
    plan->forward_real(data.data() + r * cols, out[r].data(), ws);
  }
  return out;
}

std::vector<double> irfft_real(std::span<const cplx> spectrum) {
  std::vector<cplx> c(spectrum.begin(), spectrum.end());
  ifft_inplace(c);
  std::vector<double> out(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) out[i] = c[i].real();
  return out;
}

std::vector<cplx> fft(std::vector<cplx> x) {
  fft_inplace(x);
  return x;
}

std::vector<cplx> ifft(std::vector<cplx> x) {
  ifft_inplace(x);
  return x;
}

}  // namespace dassa::dsp
