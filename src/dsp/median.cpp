#include "dassa/dsp/median.hpp"

#include <algorithm>
#include <cmath>

#include "dassa/common/error.hpp"

namespace dassa::dsp {

double median(std::vector<double> values) {
  DASSA_CHECK(!values.empty(), "median of empty range");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const auto lo_it = std::max_element(
      values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (hi + *lo_it);
}

namespace {

/// Window [lo, hi) around index i with clamped edges.
std::pair<std::size_t, std::size_t> window_around(std::size_t i,
                                                  std::size_t half,
                                                  std::size_t n) {
  const std::size_t lo = (i >= half) ? i - half : 0;
  const std::size_t hi = std::min(n, i + half + 1);
  return {lo, hi};
}

}  // namespace

std::vector<double> median_filter(std::span<const double> x,
                                  std::size_t half) {
  const std::size_t n = x.size();
  std::vector<double> y(n);
  std::vector<double> buf;
  for (std::size_t i = 0; i < n; ++i) {
    const auto [lo, hi] = window_around(i, half, n);
    buf.assign(x.begin() + static_cast<std::ptrdiff_t>(lo),
               x.begin() + static_cast<std::ptrdiff_t>(hi));
    y[i] = median(std::move(buf));
    buf.clear();
  }
  return y;
}

std::vector<double> despike_mad(std::span<const double> x, std::size_t half,
                                double k_mad) {
  DASSA_CHECK(k_mad > 0.0, "MAD multiplier must be positive");
  const std::size_t n = x.size();
  std::vector<double> y(x.begin(), x.end());
  std::vector<double> buf;
  std::vector<double> dev;
  for (std::size_t i = 0; i < n; ++i) {
    const auto [lo, hi] = window_around(i, half, n);
    buf.assign(x.begin() + static_cast<std::ptrdiff_t>(lo),
               x.begin() + static_cast<std::ptrdiff_t>(hi));
    const double med = median(buf);
    dev.resize(buf.size());
    for (std::size_t j = 0; j < buf.size(); ++j) {
      dev[j] = std::abs(buf[j] - med);
    }
    const double mad = median(dev);
    // 1.4826 scales MAD to sigma for Gaussian data; guard tiny MADs so
    // a flat window does not flag everything.
    const double threshold = k_mad * std::max(1.4826 * mad, 1e-12);
    if (std::abs(x[i] - med) > threshold) y[i] = med;
  }
  return y;
}

}  // namespace dassa::dsp
