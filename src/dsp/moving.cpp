#include "dassa/dsp/moving.hpp"

#include <cmath>
#include <deque>

namespace dassa::dsp {

namespace {
template <typename Transform>
std::vector<double> windowed_mean(std::span<const double> x, std::size_t half,
                                  Transform&& tx) {
  const std::size_t n = x.size();
  std::vector<double> y(n);
  if (n == 0) return y;
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + tx(x[i]);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(n, i + half + 1);
    y[i] = (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
  }
  return y;
}
}  // namespace

std::vector<double> moving_mean(std::span<const double> x, std::size_t half) {
  return windowed_mean(x, half, [](double v) { return v; });
}

std::vector<double> moving_rms(std::span<const double> x, std::size_t half) {
  auto y = windowed_mean(x, half, [](double v) { return v * v; });
  for (double& v : y) v = std::sqrt(v);
  return y;
}

std::vector<double> moving_absmax(std::span<const double> x,
                                  std::size_t half) {
  const std::size_t n = x.size();
  std::vector<double> y(n);
  if (n == 0) return y;
  // Monotonic deque over a sliding window [i-half, i+half].
  std::deque<std::size_t> dq;
  std::size_t right = 0;  // next index to admit
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(n - 1, i + half);
    while (right <= hi) {
      const double v = std::abs(x[right]);
      while (!dq.empty() && std::abs(x[dq.back()]) <= v) dq.pop_back();
      dq.push_back(right);
      ++right;
    }
    while (!dq.empty() && dq.front() < lo) dq.pop_front();
    y[i] = std::abs(x[dq.front()]);
  }
  return y;
}

}  // namespace dassa::dsp
