#include "dassa/dsp/butterworth.hpp"

#include <cmath>
#include <complex>
#include <map>
#include <numbers>
#include <tuple>
#include <vector>

#include "dassa/common/error.hpp"
#include "dassa/common/sync.hpp"
#include "dassa/dsp/stats.hpp"

namespace dassa::dsp {

namespace {

using cd = std::complex<double>;

/// Zero-pole-gain filter representation used during design.
struct Zpk {
  std::vector<cd> z;
  std::vector<cd> p;
  double k = 1.0;
};

/// Analog Butterworth prototype: no zeros, poles evenly spaced on the
/// left half of the unit circle, unit gain (MATLAB buttap).
Zpk butter_prototype(int order) {
  Zpk f;
  f.p.reserve(static_cast<std::size_t>(order));
  for (int i = 0; i < order; ++i) {
    const double theta = std::numbers::pi *
                         (2.0 * static_cast<double>(i) + 1.0) /
                         (2.0 * static_cast<double>(order));
    // -sin + i*cos lies strictly in the left half plane.
    f.p.emplace_back(-std::sin(theta), std::cos(theta));
  }
  f.k = 1.0;
  return f;
}

cd prod(const std::vector<cd>& v) {
  cd r(1.0, 0.0);
  for (const cd& x : v) r *= x;
  return r;
}

/// Lowpass prototype -> lowpass at angular frequency wo.
Zpk lp2lp(Zpk f, double wo) {
  const int degree =
      static_cast<int>(f.p.size()) - static_cast<int>(f.z.size());
  for (auto& z : f.z) z *= wo;
  for (auto& p : f.p) p *= wo;
  f.k *= std::pow(wo, degree);
  return f;
}

/// Lowpass prototype -> highpass at angular frequency wo.
Zpk lp2hp(Zpk f, double wo) {
  const std::size_t degree = f.p.size() - f.z.size();
  Zpk out;
  out.z.reserve(f.z.size() + degree);
  out.p.reserve(f.p.size());
  for (const auto& z : f.z) out.z.push_back(wo / z);
  for (const auto& p : f.p) out.p.push_back(wo / p);
  // Degree-difference zeros migrate to the origin.
  for (std::size_t i = 0; i < degree; ++i) out.z.emplace_back(0.0, 0.0);
  // Gain: k * real(prod(-z) / prod(-p)).
  std::vector<cd> neg_z(f.z.size());
  std::vector<cd> neg_p(f.p.size());
  for (std::size_t i = 0; i < f.z.size(); ++i) neg_z[i] = -f.z[i];
  for (std::size_t i = 0; i < f.p.size(); ++i) neg_p[i] = -f.p[i];
  out.k = f.k * (prod(neg_z) / prod(neg_p)).real();
  return out;
}

/// Lowpass prototype -> bandpass with centre wo and bandwidth bw.
Zpk lp2bp(Zpk f, double wo, double bw) {
  const std::size_t degree = f.p.size() - f.z.size();
  Zpk out;
  auto transform = [&](const std::vector<cd>& roots, std::vector<cd>& dst) {
    for (const auto& r : roots) {
      const cd scaled = r * (bw / 2.0);
      const cd disc = std::sqrt(scaled * scaled - cd(wo * wo, 0.0));
      dst.push_back(scaled + disc);
      dst.push_back(scaled - disc);
    }
  };
  transform(f.z, out.z);
  transform(f.p, out.p);
  for (std::size_t i = 0; i < degree; ++i) out.z.emplace_back(0.0, 0.0);
  out.k = f.k * std::pow(bw, degree);
  return out;
}

/// Bilinear transform s -> z with sampling rate fs (MATLAB bilinear).
Zpk bilinear(Zpk f, double fs) {
  const double fs2 = 2.0 * fs;
  Zpk out;
  out.z.reserve(f.p.size());
  out.p.reserve(f.p.size());
  cd num(1.0, 0.0);
  cd den(1.0, 0.0);
  for (const auto& z : f.z) {
    out.z.push_back((cd(fs2, 0.0) + z) / (cd(fs2, 0.0) - z));
    num *= (cd(fs2, 0.0) - z);
  }
  for (const auto& p : f.p) {
    out.p.push_back((cd(fs2, 0.0) + p) / (cd(fs2, 0.0) - p));
    den *= (cd(fs2, 0.0) - p);
  }
  // Zeros of the analog filter at infinity map to z = -1.
  while (out.z.size() < out.p.size()) out.z.emplace_back(-1.0, 0.0);
  out.k = f.k * (num / den).real();
  return out;
}

/// Expand roots into monic polynomial coefficients (highest power
/// first); imaginary parts cancel for conjugate-paired root sets.
std::vector<double> poly(const std::vector<cd>& roots) {
  std::vector<cd> c(1, cd(1.0, 0.0));
  for (const auto& r : roots) {
    c.push_back(cd(0.0, 0.0));
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      c[i] -= r * c[i - 1];
    }
  }
  std::vector<double> out(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) out[i] = c[i].real();
  return out;
}

FilterCoeffs zpk_to_tf(const Zpk& f) {
  FilterCoeffs tf;
  tf.b = poly(f.z);
  for (double& v : tf.b) v *= f.k;
  tf.a = poly(f.p);
  return tf;
}

void check_wn(double wn) {
  DASSA_CHECK(wn > 0.0 && wn < 1.0,
              "normalised cutoff must lie strictly in (0, 1)");
}

/// Pre-warped analog angular frequency for a Nyquist-relative digital
/// cutoff wn, using the fs = 2 convention (so digital frequencies map
/// through tan(pi * wn / 2)).
double warp(double wn) {
  return 4.0 * std::tan(std::numbers::pi * wn / 2.0);
}

/// Design cache: row UDFs redesign the same filter for every channel
/// (~10^4 identical designs per pipeline run), so finished coefficient
/// sets are memoised by (kind, order, cutoffs) behind a read-mostly
/// lock. Keys are the exact double arguments -- repeated calls from a
/// pipeline pass bit-identical parameters.
enum class ButterKind { kLowpass, kHighpass, kBandpass };

using DesignKey = std::tuple<int, int, double, double>;

/// Named struct (not function-local statics) so the map carries its
/// DASSA_GUARDED_BY annotation.
struct DesignCache {
  SharedMutex mu;
  std::map<DesignKey, FilterCoeffs> designs DASSA_GUARDED_BY(mu);
};

DesignCache& design_cache() {
  static DesignCache cache;
  return cache;
}

FilterCoeffs cached_design(ButterKind kind, int order, double w1, double w2,
                           FilterCoeffs (*design)(int, double, double)) {
  DesignCache& cache = design_cache();
  const DesignKey key{static_cast<int>(kind), order, w1, w2};
  auto& cells = detail::dsp_stat_cells();
  {
    ReaderLock lock(cache.mu);
    auto it = cache.designs.find(key);
    if (it != cache.designs.end()) {
      cells.butter_design_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  FilterCoeffs designed = design(order, w1, w2);
  WriterLock lock(cache.mu);
  auto [it, inserted] = cache.designs.emplace(key, std::move(designed));
  if (inserted) {
    cells.butter_design_misses.fetch_add(1, std::memory_order_relaxed);
  } else {
    cells.butter_design_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

FilterCoeffs design_lowpass(int order, double wn, double) {
  Zpk f = butter_prototype(order);
  f = lp2lp(std::move(f), warp(wn));
  f = bilinear(std::move(f), 2.0);
  return zpk_to_tf(f);
}

FilterCoeffs design_highpass(int order, double wn, double) {
  Zpk f = butter_prototype(order);
  f = lp2hp(std::move(f), warp(wn));
  f = bilinear(std::move(f), 2.0);
  return zpk_to_tf(f);
}

FilterCoeffs design_bandpass(int order, double w_lo, double w_hi) {
  const double lo = warp(w_lo);
  const double hi = warp(w_hi);
  const double wo = std::sqrt(lo * hi);
  const double bw = hi - lo;
  Zpk f = butter_prototype(order);
  f = lp2bp(std::move(f), wo, bw);
  f = bilinear(std::move(f), 2.0);
  return zpk_to_tf(f);
}

}  // namespace

FilterCoeffs butter_lowpass(int order, double wn) {
  DASSA_CHECK(order >= 1, "filter order must be >= 1");
  check_wn(wn);
  return cached_design(ButterKind::kLowpass, order, wn, 0.0, design_lowpass);
}

FilterCoeffs butter_highpass(int order, double wn) {
  DASSA_CHECK(order >= 1, "filter order must be >= 1");
  check_wn(wn);
  return cached_design(ButterKind::kHighpass, order, wn, 0.0,
                       design_highpass);
}

FilterCoeffs butter_bandpass(int order, double w_lo, double w_hi) {
  DASSA_CHECK(order >= 1, "filter order must be >= 1");
  check_wn(w_lo);
  check_wn(w_hi);
  DASSA_CHECK(w_lo < w_hi, "bandpass requires w_lo < w_hi");
  return cached_design(ButterKind::kBandpass, order, w_lo, w_hi,
                       design_bandpass);
}

}  // namespace dassa::dsp
