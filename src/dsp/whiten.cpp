#include "dassa/dsp/whiten.hpp"

#include <cmath>

#include "dassa/common/error.hpp"

namespace dassa::dsp {

std::vector<double> spectral_whiten(std::span<const double> x,
                                    std::size_t smooth_bins) {
  DASSA_CHECK(smooth_bins >= 1, "smoothing window must be >= 1 bin");
  if (x.empty()) return {};
  std::vector<cplx> spec = rfft(x);
  const std::size_t n = spec.size();

  std::vector<double> amp(n);
  for (std::size_t i = 0; i < n; ++i) amp[i] = std::abs(spec[i]);

  // Moving average of the amplitude spectrum (clamped edges) via a
  // prefix sum.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + amp[i];
  const std::size_t half = smooth_bins / 2;
  const double eps = 1e-12;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(n, i + half + 1);
    const double mean =
        (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
    if (mean > eps) spec[i] /= mean;
  }
  return irfft_real(spec);
}

std::vector<double> one_bit(std::span<const double> x) {
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = (x[i] > 0.0) ? 1.0 : ((x[i] < 0.0) ? -1.0 : 0.0);
  }
  return y;
}

std::vector<double> ram_normalize(std::span<const double> x,
                                  std::size_t half) {
  const std::size_t n = x.size();
  std::vector<double> y(n);
  if (n == 0) return y;
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + std::abs(x[i]);
  const double eps = 1e-12;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(n, i + half + 1);
    const double mean =
        (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
    y[i] = (mean > eps) ? x[i] / mean : 0.0;
  }
  return y;
}

}  // namespace dassa::dsp
