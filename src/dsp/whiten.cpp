#include "dassa/dsp/whiten.hpp"

#include <cmath>

#include "dassa/common/error.hpp"

namespace dassa::dsp {

std::vector<double> spectral_whiten(std::span<const double> x,
                                    std::size_t smooth_bins) {
  DASSA_CHECK(smooth_bins >= 1, "smoothing window must be >= 1 bin");
  if (x.empty()) return {};
  const std::size_t n = x.size();
  const auto plan = FftPlan::get(n);
  FftWorkspace& ws = fft_workspace();
  const std::size_t hb = plan->half_bins();
  std::vector<cplx>& spec = ws.cbuf(2, hb);
  plan->forward_real(x.data(), spec.data(), ws);

  // Expand the (symmetric) amplitude spectrum to full length so the
  // clamped-edge moving average is identical to smoothing the full
  // spectrum, then build the prefix sum.
  std::vector<double>& amp = ws.rbuf(0, n);
  for (std::size_t k = 0; k < hb; ++k) amp[k] = std::abs(spec[k]);
  for (std::size_t k = hb; k < n; ++k) amp[k] = amp[n - k];
  std::vector<double>& prefix = ws.rbuf(1, n + 1);
  prefix[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + amp[i];
  const std::size_t half = smooth_bins / 2;
  const double eps = 1e-12;

  // Full-spectrum whitening divides bin k by the mean around k and bin
  // n-k by the (clamped-edge, hence different) mean around n-k; taking
  // the real part of the inverse then averages the two. Reproduce that
  // on the half spectrum by applying the mean of both directions'
  // gains, keeping output identical to the full-spectrum reference.
  const auto gain = [&](std::size_t i) -> double {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(n, i + half + 1);
    const double mean =
        (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
    return (mean > eps) ? 1.0 / mean : 1.0;
  };
  for (std::size_t k = 0; k < hb; ++k) {
    const std::size_t mirror = (n - k) % n;
    spec[k] *= 0.5 * (gain(k) + gain(mirror));
  }

  std::vector<double> out(n);
  plan->inverse_real(spec.data(), out.data(), ws);
  return out;
}

std::vector<double> one_bit(std::span<const double> x) {
  DASSA_CHECK(x.empty() || x.data() != nullptr,
              "one_bit: null span with non-zero size");
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = (x[i] > 0.0) ? 1.0 : ((x[i] < 0.0) ? -1.0 : 0.0);
  }
  return y;
}

std::vector<double> ram_normalize(std::span<const double> x,
                                  std::size_t half) {
  DASSA_CHECK(x.empty() || x.data() != nullptr,
              "ram_normalize: null span with non-zero size");
  const std::size_t n = x.size();
  std::vector<double> y(n);
  if (n == 0) return y;
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + std::abs(x[i]);
  const double eps = 1e-12;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(n, i + half + 1);
    const double mean =
        (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
    y[i] = (mean > eps) ? x[i] / mean : 0.0;
  }
  return y;
}

}  // namespace dassa::dsp
