#include "dassa/dsp/hilbert.hpp"

#include <cmath>
#include <numbers>

#include "dassa/common/error.hpp"
#include "dassa/common/trace.hpp"

namespace dassa::dsp {

std::vector<cplx> analytic_signal(std::span<const double> x) {
  DASSA_CHECK(x.empty() || x.data() != nullptr,
              "analytic_signal: null span with non-zero size");
  DASSA_TRACE_SPAN("dsp", "dsp.analytic_signal");
  const std::size_t n = x.size();
  if (n == 0) return {};
  const auto plan = FftPlan::get(n);
  FftWorkspace& ws = fft_workspace();
  // The half-spectrum forward transform writes bins 0..n/2 directly
  // into the output buffer; the negative frequencies are exactly the
  // bins the analytic spectrum zeroes, so they are never computed.
  std::vector<cplx> spec(n, cplx(0.0, 0.0));
  plan->forward_real(x.data(), spec.data(), ws);
  // Double positive frequencies; DC (and Nyquist for even n) stay
  // untouched.
  for (std::size_t k = 1; k < (n + 1) / 2; ++k) spec[k] *= 2.0;
  plan->inverse(spec.data(), ws);
  return spec;
}

std::vector<double> envelope(std::span<const double> x) {
  DASSA_CHECK(x.empty() || x.data() != nullptr,
              "envelope: null span with non-zero size");
  const std::vector<cplx> z = analytic_signal(x);
  std::vector<double> env(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) env[i] = std::abs(z[i]);
  return env;
}

std::vector<double> instantaneous_phase(std::span<const double> x) {
  DASSA_CHECK(x.empty() || x.data() != nullptr,
              "instantaneous_phase: null span with non-zero size");
  const std::vector<cplx> z = analytic_signal(x);
  std::vector<double> phase(z.size());
  double offset = 0.0;
  double prev = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    const double raw = std::arg(z[i]);
    if (i > 0) {
      // Unwrap: keep successive samples within pi of each other.
      double delta = raw - prev;
      while (delta > std::numbers::pi) {
        offset -= 2.0 * std::numbers::pi;
        delta -= 2.0 * std::numbers::pi;
      }
      while (delta < -std::numbers::pi) {
        offset += 2.0 * std::numbers::pi;
        delta += 2.0 * std::numbers::pi;
      }
    }
    prev = raw;
    phase[i] = raw + offset;
  }
  return phase;
}

}  // namespace dassa::dsp
