#include "dassa/dsp/interp.hpp"

#include <algorithm>
#include <cmath>

#include "dassa/common/error.hpp"

namespace dassa::dsp {

std::vector<double> interp1(std::span<const double> x0,
                            std::span<const double> y0,
                            std::span<const double> x) {
  DASSA_CHECK(x0.size() == y0.size(), "interp1: x0 and y0 lengths differ");
  DASSA_CHECK(x0.size() >= 2, "interp1 needs at least two source samples");
  for (std::size_t i = 1; i < x0.size(); ++i) {
    DASSA_CHECK(x0[i] > x0[i - 1], "interp1: x0 must be strictly increasing");
  }
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double q = x[i];
    if (q <= x0.front()) {
      y[i] = y0.front();
      continue;
    }
    if (q >= x0.back()) {
      y[i] = y0.back();
      continue;
    }
    // First source point strictly greater than q.
    const auto it = std::upper_bound(x0.begin(), x0.end(), q);
    const std::size_t hi = static_cast<std::size_t>(it - x0.begin());
    const std::size_t lo = hi - 1;
    const double t = (q - x0[lo]) / (x0[hi] - x0[lo]);
    y[i] = y0[lo] + t * (y0[hi] - y0[lo]);
  }
  return y;
}

std::vector<double> interp1_uniform(std::span<const double> y0, double dt,
                                    std::span<const double> x) {
  DASSA_CHECK(y0.size() >= 2, "interp1 needs at least two source samples");
  DASSA_CHECK(dt > 0.0, "interp1: dt must be positive");
  std::vector<double> y(x.size());
  const double t_max = static_cast<double>(y0.size() - 1) * dt;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double q = x[i];
    if (q <= 0.0) {
      y[i] = y0.front();
      continue;
    }
    if (q >= t_max) {
      y[i] = y0.back();
      continue;
    }
    const double pos = q / dt;
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double t = pos - static_cast<double>(lo);
    y[i] = y0[lo] + t * (y0[lo + 1] - y0[lo]);
  }
  return y;
}

}  // namespace dassa::dsp
