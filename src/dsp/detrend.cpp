#include "dassa/dsp/detrend.hpp"

#include "dassa/common/error.hpp"

namespace dassa::dsp {

void detrend_linear_inplace(std::span<double> x) {
  DASSA_CHECK(x.empty() || x.data() != nullptr,
              "detrend_linear_inplace: null span with non-zero size");
  const std::size_t n = x.size();
  if (n < 2) {
    detrend_constant_inplace(x);
    return;
  }
  // Least-squares fit of y = a + b*t with t = 0..n-1, in closed form.
  // Using centered time c = t - (n-1)/2 keeps the normal equations
  // diagonal: a = mean(y), b = sum(c*y) / sum(c^2).
  const double mid = static_cast<double>(n - 1) / 2.0;
  double mean = 0.0;
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double c = static_cast<double>(i) - mid;
    mean += x[i];
    num += c * x[i];
    den += c * c;
  }
  mean /= static_cast<double>(n);
  const double slope = den > 0.0 ? num / den : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double c = static_cast<double>(i) - mid;
    x[i] -= mean + slope * c;
  }
}

void detrend_constant_inplace(std::span<double> x) {
  DASSA_CHECK(x.empty() || x.data() != nullptr,
              "detrend_constant_inplace: null span with non-zero size");
  if (x.empty()) return;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

std::vector<double> detrend_linear(std::span<const double> x) {
  DASSA_CHECK(x.empty() || x.data() != nullptr,
              "detrend_linear: null span with non-zero size");
  std::vector<double> y(x.begin(), x.end());
  detrend_linear_inplace(y);
  return y;
}

std::vector<double> detrend_constant(std::span<const double> x) {
  DASSA_CHECK(x.empty() || x.data() != nullptr,
              "detrend_constant: null span with non-zero size");
  std::vector<double> y(x.begin(), x.end());
  detrend_constant_inplace(y);
  return y;
}

}  // namespace dassa::dsp
