#include "dassa/dsp/welch.hpp"

#include <cmath>

#include "dassa/common/error.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/dsp/detrend.hpp"
#include "dassa/dsp/window.hpp"

namespace dassa::dsp {

namespace {

void validate(const WelchParams& p, std::size_t n) {
  DASSA_CHECK(p.segment >= 8, "Welch segments must hold >= 8 samples");
  DASSA_CHECK(p.overlap < p.segment, "overlap must be below segment size");
  DASSA_CHECK(n >= p.segment, "signal shorter than one Welch segment");
}

/// Windowed, detrended half-spectrum FFT of each segment of x. Only
/// the segment/2 + 1 one-sided bins the estimators consume are
/// computed; one shared plan serves every segment.
std::vector<std::vector<cplx>> segment_spectra(std::span<const double> x,
                                               const WelchParams& p) {
  const std::size_t hop = p.segment - p.overlap;
  const std::size_t segments = (x.size() - p.segment) / hop + 1;
  const std::vector<double> win =
      p.hann ? hann_window(p.segment)
             : std::vector<double>(p.segment, 1.0);

  const auto plan = FftPlan::get(p.segment);
  FftWorkspace& ws = fft_workspace();
  std::vector<std::vector<cplx>> spectra(segments);
  std::vector<double> buf(p.segment);
  for (std::size_t s = 0; s < segments; ++s) {
    const double* src = x.data() + s * hop;
    std::copy(src, src + p.segment, buf.begin());
    detrend_constant_inplace(buf);
    for (std::size_t i = 0; i < p.segment; ++i) buf[i] *= win[i];
    spectra[s].resize(plan->half_bins());
    plan->forward_real(buf.data(), spectra[s].data(), ws);
  }
  return spectra;
}

double window_power(const WelchParams& p) {
  const std::vector<double> win =
      p.hann ? hann_window(p.segment)
             : std::vector<double>(p.segment, 1.0);
  double acc = 0.0;
  for (double w : win) acc += w * w;
  return acc;
}

}  // namespace

std::vector<double> welch_psd(std::span<const double> x, double sampling_hz,
                              const WelchParams& params) {
  DASSA_TRACE_SPAN("dsp", "dsp.welch_psd");
  validate(params, x.size());
  DASSA_CHECK(sampling_hz > 0.0, "sampling rate must be positive");
  const auto spectra = segment_spectra(x, params);
  const std::size_t bins = params.segment / 2 + 1;
  const double norm =
      1.0 / (sampling_hz * window_power(params) *
             static_cast<double>(spectra.size()));

  std::vector<double> psd(bins, 0.0);
  for (const auto& spec : spectra) {
    for (std::size_t b = 0; b < bins; ++b) {
      psd[b] += std::norm(spec[b]) * norm;
    }
  }
  // One-sided: double the interior bins (DC and Nyquist stay single).
  for (std::size_t b = 1; b + 1 < bins; ++b) psd[b] *= 2.0;
  return psd;
}

std::vector<double> coherence(std::span<const double> x,
                              std::span<const double> y,
                              const WelchParams& params) {
  DASSA_TRACE_SPAN("dsp", "dsp.coherence");
  DASSA_CHECK(x.size() == y.size(), "coherence requires equal lengths");
  validate(params, x.size());
  const auto sx = segment_spectra(x, params);
  const auto sy = segment_spectra(y, params);
  DASSA_CHECK(sx.size() >= 2,
              "coherence needs >= 2 Welch segments (it is trivially 1 "
              "with one)");

  const std::size_t bins = params.segment / 2 + 1;
  std::vector<cplx> sxy(bins, cplx(0, 0));
  std::vector<double> sxx(bins, 0.0);
  std::vector<double> syy(bins, 0.0);
  for (std::size_t s = 0; s < sx.size(); ++s) {
    for (std::size_t b = 0; b < bins; ++b) {
      sxy[b] += sx[s][b] * std::conj(sy[s][b]);
      sxx[b] += std::norm(sx[s][b]);
      syy[b] += std::norm(sy[s][b]);
    }
  }
  std::vector<double> coh(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) {
    const double denom = sxx[b] * syy[b];
    if (denom > 1e-300) coh[b] = std::norm(sxy[b]) / denom;
  }
  return coh;
}

double welch_bin_hz(std::size_t bin, double sampling_hz,
                    const WelchParams& params) {
  DASSA_CHECK(params.segment >= 2, "segment must hold >= 2 samples");
  return static_cast<double>(bin) * sampling_hz /
         static_cast<double>(params.segment);
}

}  // namespace dassa::dsp
