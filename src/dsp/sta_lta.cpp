#include "dassa/dsp/sta_lta.hpp"

#include "dassa/common/error.hpp"

namespace dassa::dsp {

std::vector<double> sta_lta(std::span<const double> x,
                            const StaLtaParams& params) {
  DASSA_CHECK(params.sta >= 1, "STA window must be >= 1");
  DASSA_CHECK(params.lta > params.sta, "LTA window must exceed STA window");
  const std::size_t n = x.size();
  std::vector<double> ratio(n, 0.0);
  if (n < params.lta) return ratio;

  // Prefix sums of energy for O(1) window averages.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + x[i] * x[i];
  }
  const double eps = 1e-30;
  for (std::size_t i = params.lta; i < n; ++i) {
    const double sta =
        (prefix[i + 1] - prefix[i + 1 - params.sta]) /
        static_cast<double>(params.sta);
    const double lta =
        (prefix[i + 1] - prefix[i + 1 - params.lta]) /
        static_cast<double>(params.lta);
    ratio[i] = sta / (lta + eps);
  }
  return ratio;
}

std::vector<Trigger> pick_triggers(std::span<const double> ratio,
                                   double on_level, double off_level) {
  DASSA_CHECK(on_level > off_level,
              "trigger on-level must exceed off-level (hysteresis)");
  std::vector<Trigger> triggers;
  bool active = false;
  Trigger current;
  for (std::size_t i = 0; i < ratio.size(); ++i) {
    if (!active && ratio[i] > on_level) {
      active = true;
      current = Trigger{i, i, ratio[i]};
    } else if (active) {
      current.peak_ratio = std::max(current.peak_ratio, ratio[i]);
      if (ratio[i] < off_level) {
        current.off = i;
        triggers.push_back(current);
        active = false;
      }
    }
  }
  if (active) {
    current.off = ratio.size();
    triggers.push_back(current);
  }
  return triggers;
}

}  // namespace dassa::dsp
