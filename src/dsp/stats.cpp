#include "dassa/dsp/stats.hpp"

#include "dassa/common/counters.hpp"

namespace dassa::dsp {

namespace detail {

DspStatCells& dsp_stat_cells() {
  static DspStatCells cells;
  return cells;
}

}  // namespace detail

DspStats dsp_stats() {
  const auto& c = detail::dsp_stat_cells();
  DspStats s;
  s.fft_plan_hits = c.fft_plan_hits.load(std::memory_order_relaxed);
  s.fft_plan_misses = c.fft_plan_misses.load(std::memory_order_relaxed);
  s.fft_bytes_allocated =
      c.fft_bytes_allocated.load(std::memory_order_relaxed);
  s.butter_design_hits = c.butter_design_hits.load(std::memory_order_relaxed);
  s.butter_design_misses =
      c.butter_design_misses.load(std::memory_order_relaxed);
  s.resample_design_hits =
      c.resample_design_hits.load(std::memory_order_relaxed);
  s.resample_design_misses =
      c.resample_design_misses.load(std::memory_order_relaxed);
  return s;
}

void reset_dsp_stats() {
  auto& c = detail::dsp_stat_cells();
  c.fft_plan_hits.store(0, std::memory_order_relaxed);
  c.fft_plan_misses.store(0, std::memory_order_relaxed);
  c.fft_bytes_allocated.store(0, std::memory_order_relaxed);
  c.butter_design_hits.store(0, std::memory_order_relaxed);
  c.butter_design_misses.store(0, std::memory_order_relaxed);
  c.resample_design_hits.store(0, std::memory_order_relaxed);
  c.resample_design_misses.store(0, std::memory_order_relaxed);
}

void publish_dsp_counters() {
  const DspStats s = dsp_stats();
  auto& reg = global_counters();
  reg.high_water(counters::kDspFftPlanHits, s.fft_plan_hits);
  reg.high_water(counters::kDspFftPlanMisses, s.fft_plan_misses);
  reg.high_water(counters::kDspFftBytesAllocated, s.fft_bytes_allocated);
  reg.high_water(counters::kDspButterDesignHits, s.butter_design_hits);
  reg.high_water(counters::kDspButterDesignMisses, s.butter_design_misses);
  reg.high_water(counters::kDspResampleDesignHits, s.resample_design_hits);
  reg.high_water(counters::kDspResampleDesignMisses,
                 s.resample_design_misses);
}

}  // namespace dassa::dsp
