// The one audited home of raw socket syscalls (see socket.hpp and the
// das_lint no-naked-socket-call rule).
#include "dassa/serve/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/serve/protocol.hpp"

namespace dassa::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Write all of `n` bytes (EINTR-safe); throws IoError on failure.
/// MSG_NOSIGNAL: a vanished peer must surface as EPIPE -> IoError, not
/// a process-killing SIGPIPE.
void write_full(int fd, const void* src, std::size_t n) {
  const char* p = static_cast<const char*>(src);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket write failed");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Read exactly `n` bytes. Returns false on end-of-stream *before the
/// first byte*; a mid-buffer EOF is a torn frame (IoError).
bool read_full(int fd, void* dst, std::size_t n) {
  char* p = static_cast<char*>(dst);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      // A reset from a peer that vanished mid-conversation reads the
      // same as an abrupt close: end the stream, torn if mid-buffer.
      if (errno == ECONNRESET && got == 0) return false;
      throw_errno("socket read failed");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw IoError("socket closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

sockaddr_un local_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  // Leave room for the terminating NUL within sun_path.
  DASSA_CHECK(path.size() < sizeof(addr.sun_path),
              "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Connection::~Connection() { close_fd(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Connection::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::send_frame(std::span<const std::byte> payload) {
  DASSA_CHECK(valid(), "send_frame on a closed connection");
  DASSA_CHECK(payload.size() <= kMaxFrameBytes,
              "frame exceeds kMaxFrameBytes");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  write_full(fd_, &len, sizeof len);
  if (!payload.empty()) write_full(fd_, payload.data(), payload.size());
  global_counters().add(counters::kServeBytesSent,
                        sizeof len + payload.size());
}

std::optional<std::vector<std::byte>> Connection::recv_frame() {
  DASSA_CHECK(valid(), "recv_frame on a closed connection");
  std::uint32_t len = 0;
  if (!read_full(fd_, &len, sizeof len)) return std::nullopt;
  if (len > kMaxFrameBytes) {
    throw FormatError("serve frame length prefix exceeds the limit");
  }
  std::vector<std::byte> payload(len);
  if (len != 0 && !read_full(fd_, payload.data(), len)) {
    throw IoError("socket closed mid-frame");
  }
  global_counters().add(counters::kServeBytesReceived, sizeof len + len);
  return payload;
}

void Connection::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Listener::Listener(const std::string& path) : path_(path) {
  DASSA_CHECK(!path.empty(), "listener needs a socket path");
  const sockaddr_un addr = local_address(path);
  std::filesystem::remove(path);  // a stale socket file from a dead server
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket() failed");
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind(" + path + ") failed");
  }
  if (::listen(fd_, 64) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen(" + path + ") failed");
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best-effort unlink
}

std::optional<Connection> Listener::accept() {
  DASSA_CHECK(fd_ >= 0, "accept on a closed listener");
  while (true) {
    if (down_.load(std::memory_order_acquire)) return std::nullopt;
    const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client >= 0) return Connection(client);
    if (errno == EINTR) continue;
    // shutdown() makes a blocked accept return EINVAL; treat any
    // failure after shutdown as the clean end of the accept stream.
    if (down_.load(std::memory_order_acquire)) return std::nullopt;
    throw_errno("accept() failed");
  }
}

void Listener::shutdown() {
  down_.store(true, std::memory_order_release);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Connection connect_local(const std::string& path) {
  DASSA_CHECK(!path.empty(), "connect_local needs a socket path");
  const sockaddr_un addr = local_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + path + ") failed");
  }
  return Connection(fd);
}

}  // namespace dassa::serve
