#include "dassa/serve/protocol.hpp"

#include "dassa/common/error.hpp"
#include "../io/serialize.hpp"

namespace dassa::serve {

namespace io_detail = dassa::io::detail;

namespace {

/// Every decode must consume the frame exactly: trailing bytes mean a
/// framing bug (or an attack), not padding.
void check_fully_consumed(const io_detail::Decoder& dec,
                          const std::vector<std::byte>& frame) {
  if (dec.position() != frame.size()) {
    throw FormatError("trailing bytes after serve message");
  }
}

}  // namespace

std::vector<std::byte> encode_request(const ReadRequest& req) {
  io_detail::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(MsgType::kReadRequest));
  enc.u64(req.id);
  enc.u8(static_cast<std::uint8_t>(req.addressing));
  enc.u64(req.row_off);
  enc.u64(req.row_cnt);
  if (req.addressing == Addressing::kColumns) {
    enc.u64(req.col_off);
    enc.u64(req.col_cnt);
  } else {
    enc.u64(static_cast<std::uint64_t>(req.begin_s));
    enc.u64(static_cast<std::uint64_t>(req.end_s));
  }
  return enc.bytes();
}

ReadRequest decode_request(const std::vector<std::byte>& frame) {
  if (frame.empty()) throw FormatError("empty serve frame");
  io_detail::Decoder dec(frame);
  if (static_cast<MsgType>(dec.u8()) != MsgType::kReadRequest) {
    throw FormatError("unexpected serve message type (want read request)");
  }
  ReadRequest req;
  req.id = dec.u64();
  const std::uint8_t mode = dec.u8();
  if (mode > static_cast<std::uint8_t>(Addressing::kTime)) {
    throw FormatError("unknown serve addressing mode");
  }
  req.addressing = static_cast<Addressing>(mode);
  req.row_off = dec.u64();
  req.row_cnt = dec.u64();
  if (req.addressing == Addressing::kColumns) {
    req.col_off = dec.u64();
    req.col_cnt = dec.u64();
  } else {
    req.begin_s = static_cast<std::int64_t>(dec.u64());
    req.end_s = static_cast<std::int64_t>(dec.u64());
  }
  check_fully_consumed(dec, frame);
  return req;
}

std::vector<std::byte> encode_response(const ReadResponse& resp) {
  io_detail::Encoder enc;
  if (!resp.ok) {
    enc.u8(static_cast<std::uint8_t>(MsgType::kError));
    enc.u64(resp.id);
    enc.u32(static_cast<std::uint32_t>(resp.code));
    enc.str(resp.error);
    return enc.bytes();
  }
  DASSA_CHECK(resp.data.size() == resp.shape.size(),
              "response payload does not match its shape");
  enc.u8(static_cast<std::uint8_t>(MsgType::kReadOk));
  enc.u64(resp.id);
  enc.u64(resp.row_off);
  enc.u64(resp.col_off);
  enc.u64(resp.shape.rows);
  enc.u64(resp.shape.cols);
  enc.raw(resp.data.data(), resp.data.size() * sizeof(double));
  return enc.bytes();
}

ReadResponse decode_response(const std::vector<std::byte>& frame) {
  if (frame.empty()) throw FormatError("empty serve frame");
  io_detail::Decoder dec(frame);
  const auto type = static_cast<MsgType>(dec.u8());
  ReadResponse resp;
  if (type == MsgType::kError) {
    resp.id = dec.u64();
    resp.ok = false;
    const std::uint32_t code = dec.u32();
    if (code < static_cast<std::uint32_t>(ErrorCode::kBadRequest) ||
        code > static_cast<std::uint32_t>(ErrorCode::kInternal)) {
      throw FormatError("unknown serve error code");
    }
    resp.code = static_cast<ErrorCode>(code);
    resp.error = dec.str();
    check_fully_consumed(dec, frame);
    return resp;
  }
  if (type != MsgType::kReadOk) {
    throw FormatError("unexpected serve message type (want response)");
  }
  resp.id = dec.u64();
  resp.ok = true;
  resp.row_off = dec.u64();
  resp.col_off = dec.u64();
  resp.shape.rows = dec.u64();
  resp.shape.cols = dec.u64();
  // The payload length must agree with the declared shape exactly.
  // Division form instead of rows * cols, so a corrupted shape near
  // 2^64 cannot wrap the product past the check.
  const std::size_t remaining = frame.size() - dec.position();
  if (remaining % sizeof(double) != 0) {
    throw FormatError("serve response payload is not whole doubles");
  }
  const std::size_t elems = remaining / sizeof(double);
  const bool shape_matches =
      (resp.shape.rows == 0 || resp.shape.cols == 0)
          ? elems == 0
          : elems / resp.shape.rows == resp.shape.cols &&
                elems % resp.shape.rows == 0;
  if (!shape_matches) {
    throw FormatError("serve response payload disagrees with its shape");
  }
  resp.data.resize(elems);
  if (remaining != 0) dec.raw(resp.data.data(), remaining);
  check_fully_consumed(dec, frame);
  return resp;
}

}  // namespace dassa::serve
