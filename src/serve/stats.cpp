#include "dassa/serve/stats.hpp"

#include <bit>
#include <utility>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/telemetry.hpp"
#include "dassa/common/trace.hpp"
#include "../io/serialize.hpp"

namespace dassa::serve {

namespace io_detail = dassa::io::detail;

namespace {

void check_fully_consumed(const io_detail::Decoder& dec,
                          const std::vector<std::byte>& frame) {
  if (dec.position() != frame.size()) {
    throw FormatError("trailing bytes after stats message");
  }
}

/// Section-entry count read with its ceiling enforced before any
/// allocation sized from it.
std::size_t checked_entry_count(io_detail::Decoder& dec) {
  const std::uint32_t n = dec.u32();
  if (n > kMaxStatsEntries) {
    throw FormatError("stats section entry count exceeds ceiling");
  }
  return n;
}

/// Metric names arrive sorted (the encoder walks std::map); enforcing
/// strict ascent rejects duplicates and forged orderings in one check.
void checked_name(std::string& name, const std::string& prev) {
  if (name.empty() || name.size() > kMaxStatsNameBytes) {
    throw FormatError("stats metric name length out of bounds");
  }
  if (!prev.empty() && name <= prev) {
    throw FormatError("stats metric names not strictly increasing");
  }
}

}  // namespace

StatsSnapshot collect_process_stats() {
  StatsSnapshot s;
  s.wall_ns = trace::detail::now_ns();
  s.counters = global_counters().snapshot();
  s.gauges = telemetry::read_gauges();
  s.hists = global_metrics().snapshot();
  reconcile_torn_histograms(s);
  return s;
}

void reconcile_torn_histograms(StatsSnapshot& s) {
  for (auto& [_, h] : s.hists) {
    std::uint64_t sum = 0;
    for (const std::uint64_t b : h.buckets) sum += b;
    h.count = sum;
  }
}

std::vector<std::byte> encode_stats_request() {
  io_detail::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(MsgType::kStatsRequest));
  return enc.bytes();
}

void decode_stats_request(const std::vector<std::byte>& frame) {
  if (frame.empty()) throw FormatError("empty serve frame");
  io_detail::Decoder dec(frame);
  if (static_cast<MsgType>(dec.u8()) != MsgType::kStatsRequest) {
    throw FormatError("unexpected serve message type (want stats request)");
  }
  check_fully_consumed(dec, frame);
}

std::vector<std::byte> encode_stats(const StatsSnapshot& s) {
  DASSA_CHECK(s.counters.size() <= kMaxStatsEntries &&
                  s.gauges.size() <= kMaxStatsEntries &&
                  s.hists.size() <= kMaxStatsEntries,
              "stats snapshot exceeds the wire-format entry ceiling");
  io_detail::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(MsgType::kStatsOk));
  enc.u32(s.version);
  enc.u64(s.wall_ns);
  enc.u32(static_cast<std::uint32_t>(s.counters.size()));
  for (const auto& [name, value] : s.counters) {
    enc.str(name);
    enc.u64(value);
  }
  enc.u32(static_cast<std::uint32_t>(s.gauges.size()));
  for (const auto& [name, value] : s.gauges) {
    enc.str(name);
    enc.u64(std::bit_cast<std::uint64_t>(value));
  }
  enc.u32(static_cast<std::uint32_t>(s.hists.size()));
  for (const auto& [name, h] : s.hists) {
    enc.str(name);
    enc.u64(h.count);
    enc.u64(h.total_ns);
    std::uint8_t nonzero = 0;
    for (const std::uint64_t b : h.buckets) {
      if (b != 0) ++nonzero;
    }
    enc.u8(nonzero);
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      enc.u8(static_cast<std::uint8_t>(i));
      enc.u64(h.buckets[i]);
    }
  }
  return enc.bytes();
}

StatsSnapshot decode_stats(const std::vector<std::byte>& frame) {
  if (frame.empty()) throw FormatError("empty serve frame");
  io_detail::Decoder dec(frame);
  if (static_cast<MsgType>(dec.u8()) != MsgType::kStatsOk) {
    throw FormatError("unexpected serve message type (want stats snapshot)");
  }
  StatsSnapshot s;
  s.version = dec.u32();
  if (s.version != kStatsVersion) {
    throw FormatError("unsupported stats snapshot version");
  }
  s.wall_ns = dec.u64();

  std::string prev;
  for (std::size_t n = checked_entry_count(dec); n > 0; --n) {
    std::string name = dec.str();
    checked_name(name, prev);
    prev = name;
    s.counters.emplace(std::move(name), dec.u64());
  }
  prev.clear();
  for (std::size_t n = checked_entry_count(dec); n > 0; --n) {
    std::string name = dec.str();
    checked_name(name, prev);
    prev = name;
    s.gauges.emplace(std::move(name), std::bit_cast<double>(dec.u64()));
  }
  prev.clear();
  for (std::size_t n = checked_entry_count(dec); n > 0; --n) {
    std::string name = dec.str();
    checked_name(name, prev);
    prev = name;
    HistogramSnapshot h;
    h.count = dec.u64();
    h.total_ns = dec.u64();
    const std::uint8_t nonzero = dec.u8();
    if (nonzero > h.buckets.size()) {
      throw FormatError("stats histogram bucket entry count out of range");
    }
    std::uint64_t sum = 0;
    int prev_index = -1;
    for (std::uint8_t i = 0; i < nonzero; ++i) {
      const std::uint8_t index = dec.u8();
      if (index >= h.buckets.size() ||
          static_cast<int>(index) <= prev_index) {
        throw FormatError("stats histogram bucket index out of order");
      }
      prev_index = static_cast<int>(index);
      const std::uint64_t bucket = dec.u64();
      if (bucket == 0 || bucket > h.count - sum) {
        // A zero entry contradicts the sparse encoding; an oversized
        // one would push the bucket sum past the declared count
        // (subtraction form so the running sum cannot wrap).
        throw FormatError("stats histogram buckets disagree with count");
      }
      sum += bucket;
      h.buckets[index] = bucket;
    }
    if (sum != h.count) {
      throw FormatError("stats histogram buckets disagree with count");
    }
    s.hists.emplace(std::move(name), h);
  }
  check_fully_consumed(dec, frame);
  return s;
}

StatsSnapshot fetch_stats(Connection& conn) {
  conn.send_frame(encode_stats_request());
  const auto reply = conn.recv_frame();
  if (!reply) {
    throw IoError("daemon closed the connection mid stats poll");
  }
  if (!reply->empty() &&
      static_cast<MsgType>((*reply)[0]) == MsgType::kError) {
    const ReadResponse resp = decode_response(*reply);
    throw StateError("stats request refused: " + resp.error);
  }
  return decode_stats(*reply);
}

StatsListener::StatsListener(std::string socket_path)
    : path_(std::move(socket_path)) {
  DASSA_CHECK(!path_.empty(), "stats listener needs a socket path");
}

StatsListener::~StatsListener() { stop(); }

void StatsListener::start() {
  DASSA_CHECK(!started_.exchange(true), "stats listener started twice");
  listener_ = std::make_unique<Listener>(path_);
  accept_thread_ = std::thread([this] { accept_loop(); });
  DASSA_SLOG(kInfo, "stats.listen").field("socket", path_)
      << "answering kStats";
}

void StatsListener::stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // start() may have thrown between marking started_ and binding the
  // socket (bad path), leaving no listener and no accept thread --
  // stop() (via the destructor, during unwinding) must still be safe.
  if (listener_) listener_->shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<ConnSlot> slots;
  {
    MutexLock lock(conns_mu_);
    for (auto& s : conns_) s.conn->shutdown();
    slots.swap(conns_);
  }
  for (auto& s : slots) s.thread.join();
}

std::size_t StatsListener::tracked_connections() {
  MutexLock lock(conns_mu_);
  return conns_.size();
}

void StatsListener::reap_finished() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->done->load()) {
      it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

/// Body of one stats client's service thread: answer kStatsRequest
/// frames until the peer hangs up (or stop() shuts the socket down).
void serve_stats_connection(Connection& client) {
  while (true) {
    std::optional<std::vector<std::byte>> frame;
    try {
      frame = client.recv_frame();
    } catch (const Error&) {
      return;  // torn frame / vanished peer
    }
    if (!frame) return;  // clean end-of-stream
    std::vector<std::byte> reply;
    try {
      decode_stats_request(*frame);
      global_counters().add(counters::kStatsRequests);
      reply = encode_stats(collect_process_stats());
    } catch (const Error& e) {
      global_counters().add(counters::kStatsBadFrames);
      ReadResponse refusal;
      refusal.ok = false;
      refusal.code = ErrorCode::kBadRequest;
      refusal.error = e.what();
      reply = encode_response(refusal);
    }
    try {
      client.send_frame(reply);
    } catch (const Error&) {
      return;  // peer gone before the reply landed
    }
  }
}

}  // namespace

void StatsListener::accept_loop() {
  while (true) {
    std::optional<Connection> conn;
    try {
      conn = listener_->accept();
    } catch (const Error& e) {
      DASSA_SLOG(kError, "stats.accept_error") << e.what();
      continue;
    }
    if (!conn) return;  // listener shut down
    global_counters().add(counters::kStatsConnections);
    ConnSlot slot;
    slot.conn = std::make_shared<Connection>(std::move(*conn));
    slot.done = std::make_shared<std::atomic<bool>>(false);
    slot.thread = std::thread([client = slot.conn, done = slot.done] {
      serve_stats_connection(*client);
      done->store(true);
    });
    MutexLock lock(conns_mu_);
    reap_finished();
    conns_.push_back(std::move(slot));
  }
}

}  // namespace dassa::serve
