#include "dassa/serve/batcher.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "dassa/common/error.hpp"

namespace dassa::serve {

std::vector<BatchGroup> coalesce(const std::vector<Slab2D>& slabs,
                                 std::size_t gap_cols) {
  DASSA_CHECK(gap_cols < std::numeric_limits<std::size_t>::max() / 2,
              "coalesce gap is implausibly large");
  std::vector<BatchGroup> groups;
  if (slabs.empty()) return groups;

  // Sweep order: ascending column offset, ties by input order -- the
  // determinism the concurrency tests rely on.
  std::vector<std::size_t> order(slabs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return slabs[a].col_off < slabs[b].col_off ||
           (slabs[a].col_off == slabs[b].col_off && a < b);
  });

  std::size_t group_end = 0;  // exclusive column end of the open group
  for (const std::size_t i : order) {
    const Slab2D& s = slabs[i];
    const std::size_t end = s.col_off + s.col_cnt;
    // A slab joins the open group when it starts within gap_cols of
    // the group's current end; empty slabs never merge (a zero-size
    // read shares nothing).
    const bool joins = !groups.empty() && !s.empty() &&
                       !slabs[groups.back().jobs.front()].empty() &&
                       s.col_off <= group_end + gap_cols;
    if (joins) {
      BatchGroup& g = groups.back();
      g.jobs.push_back(i);
      group_end = std::max(group_end, end);
      g.span.row_off = std::min(g.span.row_off, s.row_off);
      const std::size_t row_end =
          std::max(g.span.row_off + g.span.row_cnt, s.row_off + s.row_cnt);
      g.span.row_cnt = row_end - g.span.row_off;
      g.span.col_cnt = group_end - g.span.col_off;
    } else {
      groups.push_back(BatchGroup{s, {i}});
      group_end = end;
    }
  }
  return groups;
}

std::vector<double> slice_from_union(const std::vector<double>& span_data,
                                     const Slab2D& span, const Slab2D& slab) {
  DASSA_CHECK(span_data.size() == span.size(),
              "union payload does not match the union slab");
  DASSA_CHECK(slab.row_off >= span.row_off && slab.col_off >= span.col_off &&
                  slab.row_off + slab.row_cnt <= span.row_off + span.row_cnt &&
                  slab.col_off + slab.col_cnt <= span.col_off + span.col_cnt,
              "member slab " + slab.str() + " escapes union " + span.str());
  std::vector<double> out(slab.size());
  const std::size_t r0 = slab.row_off - span.row_off;
  const std::size_t c0 = slab.col_off - span.col_off;
  for (std::size_t r = 0; r < slab.row_cnt; ++r) {
    const double* src = span_data.data() + (r0 + r) * span.col_cnt + c0;
    std::copy_n(src, slab.col_cnt, out.data() + r * slab.col_cnt);
  }
  return out;
}

}  // namespace dassa::serve
