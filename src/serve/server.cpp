#include "dassa/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <utility>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/telemetry.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/das/search.hpp"
#include "dassa/io/kv.hpp"
#include "dassa/serve/batcher.hpp"
#include "dassa/serve/stats.hpp"

namespace dassa::serve {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Server::Server(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queue_capacity,
             QueueCounterNames{counters::kServeQueuePushed,
                               counters::kServeQueuePopped,
                               counters::kServeQueuePushBlocked,
                               counters::kServeQueuePeakDepth}),
      groups_(std::max<std::size_t>(2 * cfg_.workers, 4)),
      h_request_(global_metrics().histogram(lat::kRequest)),
      h_queue_wait_(global_metrics().histogram(lat::kQueueWait)),
      h_coalesce_(global_metrics().histogram(lat::kCoalesce)),
      h_decode_(global_metrics().histogram(lat::kDecode)),
      h_write_(global_metrics().histogram(lat::kWrite)) {
  DASSA_CHECK(!cfg_.socket_path.empty(), "serve needs a socket path");
  DASSA_CHECK(cfg_.workers >= 1, "serve needs at least one worker");
  DASSA_CHECK(cfg_.max_batch >= 1, "max_batch must be at least 1");
  vca_ = ends_with(cfg_.archive, ".vca") ? io::Vca::load(cfg_.archive)
                                         : io::Vca::build({cfg_.archive});
  const std::string sidecar = io::IntervalIndex::sidecar_path(cfg_.archive);
  if (ends_with(cfg_.archive, ".vca") && std::filesystem::exists(sidecar)) {
    index_ = io::IntervalIndex::load(sidecar);
    has_time_index_ = true;
  } else {
    // No persisted sidecar: derive the index from member headers so
    // time-addressed requests still work, and say so -- a republisher
    // should be writing the sidecar (das_repack --save-vca, ingest).
    try {
      index_ = das::build_interval_index(vca_);
      has_time_index_ = true;
      global_counters().add(counters::kIoIndexFallbacks);
      DASSA_SLOG(kWarn, "serve.index_fallback")
              .field("archive", cfg_.archive)
          << "no .tix sidecar; built the time-interval index from "
             "member headers";
    } catch (const Error& e) {
      // Archive without timestamps/rate: serve column requests only.
      DASSA_SLOG(kWarn, "serve.no_time_index")
              .field("archive", cfg_.archive)
          << "time-addressed requests disabled: " << e.what();
    }
  }
}

Server::~Server() { stop(); }

void Server::start() {
  DASSA_CHECK(!started_.exchange(true), "server started twice");
  // The admission-queue depth gauge rides in every telemetry sample
  // and every kStats snapshot; stop() re-points it at a constant so a
  // late stats poll can never call into a dead server.
  telemetry::register_gauge("serve.queue.depth", [this] {
    return static_cast<double>(queue_.depth());
  });
  listener_ = std::make_unique<Listener>(cfg_.socket_path);
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  worker_threads_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
  DASSA_SLOG(kInfo, "serve.start")
          .field("socket", cfg_.socket_path)
          .field("workers", static_cast<std::uint64_t>(cfg_.workers))
      << "serving " << cfg_.archive;
}

void Server::stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // Drain order matters: stop admitting, finish what was admitted,
  // then wake the readers so they observe end-of-stream.
  listener_->shutdown();
  accept_thread_.join();
  queue_.close();           // readers' pushes now return false
  dispatch_thread_.join();  // drains the admission queue into groups
  groups_.close();
  for (auto& w : worker_threads_) w.join();
  std::vector<std::thread> readers;
  {
    MutexLock lock(readers_mu_);
    for (auto& c : clients_) c->conn.shutdown();
    readers.swap(reader_threads_);
  }
  for (auto& r : readers) r.join();
  {
    MutexLock lock(readers_mu_);
    clients_.clear();
  }
  telemetry::register_gauge("serve.queue.depth", [] { return 0.0; });
  DASSA_SLOG(kInfo, "serve.stop").field("socket",
                                                       cfg_.socket_path)
      << "drained";
}

void Server::accept_loop() {
  while (true) {
    std::optional<Connection> conn;
    try {
      conn = listener_->accept();
    } catch (const Error& e) {
      DASSA_SLOG(kError, "serve.accept_error")
          << e.what();
      continue;
    }
    if (!conn) return;  // listener shut down
    global_counters().add(counters::kServeConnections);
    auto client = std::make_shared<ClientConn>();
    client->conn = std::move(*conn);
    client->client_id = next_client_id_.fetch_add(1);
    MutexLock lock(readers_mu_);
    clients_.push_back(client);
    reader_threads_.emplace_back(
        [this, client = std::move(client)] { reader_loop(client); });
  }
}

void Server::reader_loop(std::shared_ptr<ClientConn> client) {
  while (true) {
    std::optional<std::vector<std::byte>> frame;
    try {
      frame = client->conn.recv_frame();
    } catch (const Error&) {
      return;  // torn frame / vanished peer: nothing to reply to
    }
    if (!frame) return;  // clean end-of-stream
    const std::uint64_t received_ns =
        cfg_.request_tracing ? now_ns() : 0;

    // Stats polls are answered inline, never queued: a monitor must be
    // able to sample a server whose admission queue is the problem.
    if (!frame->empty() &&
        static_cast<MsgType>((*frame)[0]) == MsgType::kStatsRequest) {
      try {
        decode_stats_request(*frame);
      } catch (const Error& e) {
        global_counters().add(counters::kStatsBadFrames);
        send_error(*client, 0, ErrorCode::kBadRequest, e.what());
        continue;
      }
      global_counters().add(counters::kStatsRequests);
      const std::vector<std::byte> reply =
          encode_stats(collect_process_stats());
      try {
        MutexLock lock(client->write_mu);
        client->conn.send_frame(reply);
      } catch (const Error&) {
        return;  // peer gone
      }
      continue;
    }
    global_counters().add(counters::kServeRequests);

    ReadRequest req;
    try {
      req = decode_request(*frame);
    } catch (const Error& e) {
      send_error(*client, 0, ErrorCode::kBadRequest, e.what());
      continue;
    }
    Slab2D slab;
    try {
      slab = resolve(req);
    } catch (const Error& e) {
      const ErrorCode code = dynamic_cast<const InvalidArgument*>(&e)
                                 ? ErrorCode::kOutOfRange
                                 : ErrorCode::kBadRequest;
      send_error(*client, req.id, code, e.what());
      continue;
    }
    if (slab.empty()) {
      send_error(*client, req.id, ErrorCode::kEmptyRange,
                 "requested window selects no samples");
      continue;
    }
    Job job;
    job.req = req;
    job.slab = slab;
    job.conn = client;
    job.request_seq = next_request_seq_.fetch_add(1);
    job.received_ns = received_ns;
    job.admit_ns = now_ns();
    if (!queue_.push(std::move(job))) {
      // Shutting down: refuse, but keep reading until the peer hangs
      // up so its remaining requests each get an explicit answer.
      send_error(*client, req.id, ErrorCode::kShuttingDown,
                 "server is draining");
    }
  }
}

Slab2D Server::resolve(const ReadRequest& req) const {
  const Shape2D shape = vca_.shape();
  Slab2D slab;
  slab.row_off = req.row_off;
  slab.row_cnt = req.row_cnt == 0 ? shape.rows - std::min(req.row_off,
                                                          shape.rows)
                                  : req.row_cnt;
  if (req.addressing == Addressing::kColumns) {
    slab.col_off = req.col_off;
    slab.col_cnt =
        req.col_cnt == 0 ? shape.cols - std::min(req.col_off, shape.cols)
                         : req.col_cnt;
  } else {
    if (!has_time_index_) {
      throw FormatError("archive has no time index; address by columns");
    }
    if (req.begin_s >= req.end_s) {
      throw FormatError("time window must satisfy begin < end");
    }
    const double rate =
        vca_.global_meta().get_f64(io::meta::kSamplingFrequencyHz);
    std::size_t lo = shape.cols;
    std::size_t hi = 0;
    for (const io::IntervalEntry& e : index_.query(req.begin_s, req.end_s)) {
      const double off_b =
          static_cast<double>(std::max(req.begin_s - e.begin_s,
                                       std::int64_t{0})) * rate;
      const double off_e =
          static_cast<double>(req.end_s - e.begin_s) * rate;
      const std::size_t b =
          e.col_start + std::min(static_cast<std::size_t>(off_b), e.cols);
      const std::size_t x =
          e.col_start +
          std::min(static_cast<std::size_t>(std::ceil(off_e)), e.cols);
      lo = std::min(lo, b);
      hi = std::max(hi, x);
    }
    if (hi <= lo) return Slab2D{slab.row_off, 0, slab.row_cnt, 0};
    slab.col_off = lo;
    slab.col_cnt = hi - lo;
  }
  slab.validate_against(shape);  // InvalidArgument -> kOutOfRange
  return slab;
}

void Server::dispatch_loop() {
  while (true) {
    std::optional<Job> first = queue_.pop();
    if (!first) return;  // closed and drained
    if (cfg_.request_tracing) first->dequeued_ns = now_ns();
    std::vector<Job> batch;
    batch.push_back(std::move(*first));
    if (cfg_.batching && cfg_.max_batch > 1) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(cfg_.coalesce_window_us);
      while (batch.size() < cfg_.max_batch) {
        std::optional<Job> next = queue_.try_pop_until(deadline);
        if (!next) break;  // window elapsed, or closed and drained
        if (cfg_.request_tracing) next->dequeued_ns = now_ns();
        batch.push_back(std::move(*next));
      }
    }
    dispatch_round(std::move(batch));
  }
}

void Server::dispatch_round(std::vector<Job> batch) {
  if (cfg_.request_tracing) {
    // One clock read covers the round: every member leaves the
    // coalesce hold at the same instant, by construction.
    const std::uint64_t grouped = now_ns();
    for (Job& j : batch) j.grouped_ns = grouped;
  }
  std::vector<Slab2D> slabs;
  slabs.reserve(batch.size());
  for (const Job& j : batch) slabs.push_back(j.slab);
  std::vector<BatchGroup> groups =
      cfg_.batching ? coalesce(slabs, cfg_.gap_cols)
                    : [&] {
                        std::vector<BatchGroup> singles;
                        for (std::size_t i = 0; i < slabs.size(); ++i) {
                          singles.push_back(BatchGroup{slabs[i], {i}});
                        }
                        return singles;
                      }();
  for (BatchGroup& g : groups) {
    global_counters().add(counters::kServeBatchGroups);
    if (g.jobs.size() >= 2) {
      global_counters().add(counters::kServeBatchCoalesced, g.jobs.size());
    }
    GroupWork work;
    work.span = g.span;
    work.jobs.reserve(g.jobs.size());
    for (const std::size_t i : g.jobs) work.jobs.push_back(std::move(batch[i]));
    groups_.push(std::move(work));  // uncounted internal hand-off
  }
}

void Server::worker_loop() {
  while (true) {
    std::optional<GroupWork> work = groups_.pop();
    if (!work) return;
    DASSA_TRACE_SPAN("serve", "serve.group");
    std::vector<double> span_data;
    const std::uint64_t decode_begin_ns =
        cfg_.request_tracing ? now_ns() : 0;
    try {
      span_data = vca_.read_slab(work->span);
      global_counters().add(counters::kServeBatchUnionReads);
    } catch (const Error& e) {
      for (const Job& j : work->jobs) {
        send_error(*j.conn, j.req.id, ErrorCode::kInternal, e.what());
      }
      continue;
    }
    const std::uint64_t decode_end_ns =
        cfg_.request_tracing ? now_ns() : 0;
    std::uint64_t write_begin_ns = decode_end_ns;
    for (const Job& j : work->jobs) {
      ReadResponse resp;
      resp.id = j.req.id;
      resp.ok = true;
      resp.row_off = j.slab.row_off;
      resp.col_off = j.slab.col_off;
      resp.shape = Shape2D{j.slab.row_cnt, j.slab.col_cnt};
      resp.data = slice_from_union(span_data, work->span, j.slab);
      send_response(*j.conn, resp);
      const std::uint64_t reply_ns = now_ns();
      h_request_.record_ns(reply_ns - j.admit_ns);
      if (cfg_.request_tracing) {
        record_request_trace(j, decode_begin_ns, decode_end_ns,
                             write_begin_ns, reply_ns);
        // The next batch member's write stage starts where this one's
        // reply landed, so each member is charged only its own slice
        // and socket write.
        write_begin_ns = reply_ns;
      }
    }
  }
}

void Server::record_request_trace(const Job& job,
                                  std::uint64_t decode_begin_ns,
                                  std::uint64_t decode_end_ns,
                                  std::uint64_t write_begin_ns,
                                  std::uint64_t reply_ns) {
  // Stage boundaries are stamps of one monotonic clock taken in stage
  // order, so each difference is the time the request spent inside
  // that stage. Exactly one record per stage per answered request --
  // the counts-equal invariant the stats tests pin. Decode is shared
  // by every member of a batch, and write starts at the previous
  // member's reply stamp, so the interval a later member spends queued
  // behind its batch-mates' replies is deliberately charged to no
  // stage: stage values sum to at most the end-to-end latency, and
  // write p99 reflects single-reply cost, not batch position.
  const std::uint64_t queue_wait = job.dequeued_ns - job.admit_ns;
  const std::uint64_t coalesce = job.grouped_ns - job.dequeued_ns;
  const std::uint64_t decode = decode_end_ns - decode_begin_ns;
  const std::uint64_t write = reply_ns - write_begin_ns;
  h_queue_wait_.record_ns(queue_wait);
  h_coalesce_.record_ns(coalesce);
  h_decode_.record_ns(decode);
  h_write_.record_ns(write);
  const std::uint64_t total = reply_ns - job.admit_ns;
  if (cfg_.slow_ns != 0 && total > cfg_.slow_ns) {
    global_counters().add(counters::kServeSlowRequests);
    DASSA_SLOG(kWarn, "serve.slow_request")
        .field("request", job.request_seq)
        .field("client", job.conn->client_id)
        .field("client_req_id", job.req.id)
        .field("total_us", static_cast<double>(total) / 1e3)
        .field("admit_us",
               static_cast<double>(job.admit_ns - job.received_ns) / 1e3)
        .field("queue_wait_us", static_cast<double>(queue_wait) / 1e3)
        .field("coalesce_us", static_cast<double>(coalesce) / 1e3)
        .field("decode_us", static_cast<double>(decode) / 1e3)
        .field("write_us", static_cast<double>(write) / 1e3)
        << "end-to-end latency over the slow-request threshold";
  }
}

void Server::send_response(ClientConn& client, const ReadResponse& resp) {
  const std::vector<std::byte> frame = encode_response(resp);
  try {
    MutexLock lock(client.write_mu);
    client.conn.send_frame(frame);
  } catch (const Error&) {
    global_counters().add(counters::kServeErrors);
    return;  // peer is gone; its reader thread will notice EOF
  }
  global_counters().add(counters::kServeResponses);
}

void Server::send_error(ClientConn& client, std::uint64_t id, ErrorCode code,
                        const std::string& message) {
  global_counters().add(counters::kServeErrors);
  ReadResponse resp;
  resp.id = id;
  resp.ok = false;
  resp.code = code;
  resp.error = message;
  const std::vector<std::byte> frame = encode_response(resp);
  try {
    MutexLock lock(client.write_mu);
    client.conn.send_frame(frame);
  } catch (const Error&) {
    // Peer already gone; the refusal had no one to reach.
  }
}

}  // namespace dassa::serve
