#include "dassa/serve/client.hpp"

#include <utility>

#include "dassa/common/error.hpp"

namespace dassa::serve {

Client::Client(const std::string& socket_path) {
  DASSA_CHECK(!socket_path.empty(), "serve client needs a socket path");
  conn_ = connect_local(socket_path);
}

ReadResponse Client::call(ReadRequest req) {
  if (req.id == 0) req.id = next_id_++;
  conn_.send_frame(encode_request(req));
  std::optional<std::vector<std::byte>> frame = conn_.recv_frame();
  if (!frame) throw IoError("server closed the connection mid-request");
  ReadResponse resp = decode_response(*frame);
  if (resp.id != req.id) {
    throw FormatError("serve reply id does not match the request");
  }
  return resp;
}

std::vector<double> Client::checked(ReadRequest req, Slab2D* out_slab) {
  ReadResponse resp = call(std::move(req));
  if (!resp.ok) {
    throw StateError("serve request refused: " + resp.error);
  }
  if (out_slab != nullptr) {
    *out_slab = Slab2D{resp.row_off, resp.col_off, resp.shape.rows,
                       resp.shape.cols};
  }
  return std::move(resp.data);
}

std::vector<double> Client::read_slab(const Slab2D& slab) {
  // Client-side precheck: a fully-specified slab whose payload cannot
  // fit in one response frame would only bounce off the server.
  if (slab.row_cnt != 0 && slab.col_cnt != 0) {
    DASSA_CHECK(
        slab.col_cnt <= kMaxFrameBytes / sizeof(double) / slab.row_cnt,
        "requested slab cannot fit in one serve frame");
  }
  ReadRequest req;
  req.addressing = Addressing::kColumns;
  req.row_off = slab.row_off;
  req.row_cnt = slab.row_cnt;
  req.col_off = slab.col_off;
  req.col_cnt = slab.col_cnt;
  return checked(std::move(req), nullptr);
}

std::vector<double> Client::read_window(std::int64_t begin_s,
                                        std::int64_t end_s,
                                        std::size_t row_off,
                                        std::size_t row_cnt,
                                        Slab2D* out_slab) {
  DASSA_CHECK(begin_s < end_s, "read_window needs begin < end");
  ReadRequest req;
  req.addressing = Addressing::kTime;
  req.row_off = row_off;
  req.row_cnt = row_cnt;
  req.begin_s = begin_s;
  req.end_s = end_s;
  return checked(std::move(req), out_slab);
}

}  // namespace dassa::serve
