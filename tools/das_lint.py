#!/usr/bin/env python3
"""das_lint: DASSA's custom invariant lint over src/ and include/.

Rules (see docs/ANALYSIS.md for rationale and how to add one):

  no-const-cast    const_cast is banned in src/ and include/. Reads are
                   const (ArraySource::read_slab); casting constness
                   away hides mutation from the engine's contracts.
  no-naked-new     Array new / delete are banned; scalar `new` is only
                   allowed feeding a smart pointer on the same line
                   (for types with private constructors, where
                   make_shared cannot be used).
  dassa-throw      Every `throw` in src/ must raise a dassa:: error
                   type, so callers (and the fuzz harness) can rely on
                   catching dassa::Error for any library failure.
  counter-prefix   Counter names live in one place (counters.hpp) and
                   must sit in a registered dotted namespace:
                   io io.codec io.cache mpi mem dsp.fft dsp.butter
                   dsp.resample haee trace.  String literals fed to the
                   registry directly in src/ must match too. New
                   subsystems register their namespace here.
  trace-span-macro Spans are opened only through DASSA_TRACE_SPAN.
                   Naming trace::detail::SpanGuard anywhere outside
                   common/trace.hpp bypasses the macro's single
                   enable-check shape and its scope naming, so the
                   type itself is off-limits to the rest of the tree.
  include-hygiene  Headers carry #pragma once, never `using namespace`
                   at namespace scope, and never include <iostream>
                   (iostream's static init order and weight do not
                   belong in library headers).
  entry-guard      Public API entry points (out-of-line definitions in
                   src/*.cpp taking arguments) must validate input:
                   the body must contain DASSA_CHECK / a validate
                   helper / a typed throw. Findings are ratcheted
                   against tools/das_lint_baseline.txt: legacy
                   unguarded functions are listed there; new ones
                   fail the lint.
  no-raw-intrinsics CPU intrinsics (_mm_* / _mm256_* / __m128 / __m256
                   / NEON vld1/vst1 / <immintrin.h> / <arm_neon.h>)
                   live only in the SIMD layer
                   (include/dassa/common/simd.hpp, src/common/simd.cpp).
                   Everywhere else targets the dassa::simd API so the
                   runtime dispatcher (DASSA_SIMD) stays the single
                   point of truth for what instruction set runs.
  no-direct-stderr Diagnostics go through the structured logger
                   (DASSA_LOG / DASSA_SLOG); the only sanctioned raw
                   stderr write is the console sink in
                   src/common/log.cpp. Also runs over tools/ (the only
                   rule that does). Per-file findings are ratcheted
                   against the baseline, keyed by write count, so the
                   count can only go down.
  sync-primitive   Naked std synchronisation types (std::mutex,
                   std::shared_mutex, std::condition_variable, the lock
                   adapters, and their headers) are banned outside
                   include/dassa/common/sync.hpp. Everything else uses
                   dassa::Mutex / SharedMutex / CondVar and the
                   MutexLock / ReaderLock / WriterLock scopes, which
                   carry the Clang thread-safety capability annotations
                   -- a naked std type is invisible to -Wthread-safety.
  no-naked-socket  Raw socket syscalls (socket/bind/listen/accept/
                   connect/...) and <sys/socket.h>/<sys/un.h> live only
                   in the serve socket layer (dassa/serve/socket.hpp,
                   src/serve/socket.cpp), which owns framing, EINTR
                   retries, MSG_NOSIGNAL, and the byte counters.
                   Everywhere else talks serve::Connection /
                   serve::Listener so no frame can bypass the audited
                   I/O path.

Zero findings is enforced by ctest (`tools_das_lint`). To accept a new
entry-guard / no-direct-stderr finding deliberately, run with
--update-baseline and commit the diff; every other rule has no baseline
and must stay clean.

Every rule ships a positive and a negative fixture; `--self-test` runs
all of them (ctest `tools_das_lint_selftest`) so a regressed regex
fails fast instead of silently passing everything.

Usage:
    python3 tools/das_lint.py [--repo DIR] [--update-baseline]
    python3 tools/das_lint.py --self-test
"""

import argparse
import pathlib
import re
import sys

CANONICAL_COUNTER_PREFIX = re.compile(
    r"^(io|mpi|mem|dsp|haee|trace|telemetry|ingest|serve|stats)\.")
# Registered counter namespaces: everything before the final dot of a
# counter name must appear here. Adding a subsystem (e.g. the DASH5 v3
# storage engine's io.codec / io.cache) means adding its namespace.
# Histogram names fed to global_metrics().histogram("...") are held to
# the same register (serve.lat is the request-tracing stage family).
CANONICAL_COUNTER_NAMESPACES = frozenset({
    "io", "io.codec", "io.cache", "io.pool", "io.repack", "io.index",
    "mpi", "mem",
    "dsp.fft", "dsp.butter", "dsp.resample",
    "haee", "haee.stage",
    "trace",
    "telemetry",
    "log",
    "ingest", "ingest.queue",
    "serve", "serve.queue", "serve.batch", "serve.lat",
    "stats",
})
STD_EXCEPTIONS = (
    "std::", "runtime_error", "logic_error", "invalid_argument",
    "out_of_range", "length_error", "bad_alloc", "exception",
)
DASSA_ERROR_TYPES = (
    "Error", "InvalidArgument", "IoError", "FormatError", "MpiError",
    "StateError",
)
GUARD_TOKENS = re.compile(
    r"DASSA_CHECK|DASSA_BOUNDS_CHECK|validate|throw\s|\bresolve\("
    r"|\bcheck_\w+\(")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literal contents, preserving
    line structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule, path, line, message, key=None):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        # Stable identity for the baseline (line numbers drift).
        self.key = key or f"{rule}:{path}:{message}"

    def __str__(self):
        return f"{self.rule}  {self.path}:{self.line}  {self.message}"


def iter_lines(scrubbed):
    return enumerate(scrubbed.splitlines(), start=1)


def rule_no_const_cast(path, scrubbed, raw):
    for lineno, line in iter_lines(scrubbed):
        if "const_cast" in line:
            yield Finding("no-const-cast", path, lineno,
                          "const_cast is banned")


def rule_no_naked_new(path, scrubbed, raw):
    for lineno, line in iter_lines(scrubbed):
        if re.search(r"\bdelete\b", line):
            # Deleted special member functions are idiomatic.
            if re.search(r"=\s*delete", line):
                continue
            yield Finding("no-naked-new", path, lineno,
                          "manual delete is banned (use RAII)")
        m = re.search(r"\bnew\b(\s*\(\s*std::nothrow\s*\))?", line)
        if m and not re.search(r"\bnew\b\s*\(", line):
            if re.search(r"\bnew\b[^;]*\[", line):
                yield Finding("no-naked-new", path, lineno,
                              "array new[] is banned (use std::vector)")
            elif not re.search(r"(make_unique|make_shared|shared_ptr|"
                               r"unique_ptr)", line):
                yield Finding("no-naked-new", path, lineno,
                              "naked new outside a smart pointer")


def rule_dassa_throw(path, scrubbed, raw):
    if not str(path).startswith("src/"):
        return
    for lineno, line in iter_lines(scrubbed):
        m = re.search(r"\bthrow\s+([A-Za-z_][\w:]*)", line)
        if not m:
            continue
        what = m.group(1)
        if what.startswith("dassa::") or what in DASSA_ERROR_TYPES:
            continue
        yield Finding("dassa-throw", path, lineno,
                      f"throws non-DASSA type '{what}'")


def counter_name_problem(name):
    """Return a description of what is wrong with counter `name`, or
    None if it is canonical: top-level prefix registered AND the dotted
    namespace (everything before the final dot) listed in
    CANONICAL_COUNTER_NAMESPACES."""
    if not CANONICAL_COUNTER_PREFIX.match(name):
        return ("outside canonical namespaces "
                "io|mpi|mem|dsp|haee|trace|telemetry|ingest|serve|stats")
    namespace = name.rsplit(".", 1)[0]
    if namespace not in CANONICAL_COUNTER_NAMESPACES:
        return (f"namespace '{namespace}' not registered in "
                "CANONICAL_COUNTER_NAMESPACES")
    return None


def rule_counter_prefix(path, scrubbed, raw):
    raw_lines = raw.splitlines()
    if path.endswith("common/counters.hpp"):
        for lineno, line in enumerate(raw_lines, start=1):
            m = re.search(r'inline constexpr const char\* k\w+\s*=?\s*'
                          r'"([^"]+)"', line)
            if not m:
                # Multi-line constant: name on one line, literal later.
                m = re.match(r'\s*"([^"]+)";', line)
            if m:
                problem = counter_name_problem(m.group(1))
                if problem:
                    yield Finding("counter-prefix", path, lineno,
                                  f"counter '{m.group(1)}' {problem}")
        return
    for lineno, line in enumerate(raw_lines, start=1):
        # Only calls on a counter registry count; pipeline stage names
        # etc. also flow through methods called `add`.
        m = re.search(r'counters\(\)\s*\.\s*(?:add|high_water|get)'
                      r'\(\s*"([^"]+)"', line)
        if m:
            problem = counter_name_problem(m.group(1))
            if problem:
                yield Finding("counter-prefix", path, lineno,
                              f"counter literal '{m.group(1)}' {problem}")
        # Histogram names share the metric namespace register: a
        # das_top or Prometheus consumer sees them next to the
        # counters, so they obey the same naming discipline.
        m = re.search(r'\.\s*histogram\(\s*"([^"]+)"', line)
        if m:
            problem = counter_name_problem(m.group(1))
            if problem:
                yield Finding("counter-prefix", path, lineno,
                              f"histogram literal '{m.group(1)}' {problem}")


def rule_include_hygiene(path, scrubbed, raw):
    if not path.endswith((".hpp", ".h")):
        return
    if "#pragma once" not in raw:
        yield Finding("include-hygiene", path, 1, "missing #pragma once")
    for lineno, line in iter_lines(scrubbed):
        if re.search(r"^\s*using\s+namespace\b", line):
            yield Finding("include-hygiene", path, lineno,
                          "using-namespace at namespace scope in a header")
        if re.search(r'#\s*include\s*<iostream>', line):
            yield Finding("include-hygiene", path, lineno,
                          "<iostream> in a header")


def rule_no_direct_stderr(path, scrubbed, raw):
    """All diagnostics flow through the structured logger (DASSA_LOG /
    DASSA_SLOG), which owns the one sanctioned stderr write in
    src/common/log.cpp. Direct std::cerr / fprintf(stderr, ...) anywhere
    else bypasses level filtering, rank/thread attribution, and the
    JSONL sink. Findings are ratcheted per file against the baseline:
    the legacy tool usage printers are listed there; new direct writes
    fail the lint."""
    if path == "src/common/log.cpp":
        return  # the console sink itself
    hits = 0
    first_line = 0
    for lineno, line in iter_lines(scrubbed):
        if re.search(r"\bstd::cerr\b|\bfprintf\s*\(\s*stderr\b"
                     r"|\bperror\s*\(", line):
            hits += 1
            if first_line == 0:
                first_line = lineno
    if hits:
        # The count is part of the key: adding a stderr write to an
        # already-baselined file changes the key and fails the lint
        # (and removing one flags the baseline entry as stale, so the
        # ratchet only ever tightens).
        yield Finding(
            "no-direct-stderr", path, first_line,
            f"{hits} direct stderr write(s); route diagnostics through "
            "DASSA_LOG / DASSA_SLOG",
            key=f"no-direct-stderr:{path}:{hits}")


def rule_trace_span_macro(path, scrubbed, raw):
    """SpanGuard is an implementation detail of DASSA_TRACE_SPAN; any
    other spelling of it in the tree is a macro bypass."""
    if path.endswith("common/trace.hpp"):
        return
    for lineno, line in iter_lines(scrubbed):
        if "SpanGuard" in line:
            yield Finding("trace-span-macro", path, lineno,
                          "construct spans via DASSA_TRACE_SPAN, not "
                          "trace::detail::SpanGuard")


SIMD_LAYER_FILES = frozenset({
    "include/dassa/common/simd.hpp",
    "src/common/simd.cpp",
})
RAW_INTRINSIC = re.compile(
    r"\b_mm_\w+|\b_mm256_\w+|\b__m128i?d?\b|\b__m256i?d?\b"
    r"|\bvld1q?_\w+|\bvst1q?_\w+|\b(?:u?int|float)(?:8|16|32|64)x\d+_t\b"
    r"|#\s*include\s*<(?:immintrin|emmintrin|tmmintrin|smmintrin|"
    r"arm_neon)\.h>")


def rule_no_raw_intrinsics(path, scrubbed, raw):
    """Vector intrinsics are confined to the SIMD layer; the rest of the
    tree calls dassa::simd so the DASSA_SIMD runtime dispatcher remains
    the single decision point for which instruction set runs."""
    if path in SIMD_LAYER_FILES:
        return
    for lineno, line in iter_lines(scrubbed):
        m = RAW_INTRINSIC.search(line)
        if m:
            yield Finding("no-raw-intrinsics", path, lineno,
                          f"raw intrinsic '{m.group(0)}' outside the "
                          "SIMD layer (use dassa::simd)")


FUNC_DEF = re.compile(
    r"^[A-Za-z_][\w:<>,&*\s\[\]]*?"      # return type (line starts at col 0)
    r"\b((?:[A-Za-z_]\w*::)*[A-Za-z_~]\w*)"  # qualified function name
    r"\s*\(([^;{}]*)\)"                  # parameter list
    r"(\s*const)?\s*\{",                 # opening brace (possibly const)
    re.M | re.S)


def rule_entry_guard(path, scrubbed, raw):
    """Out-of-line definitions in src/*.cpp with parameters must
    validate input near the top of the body."""
    if not (str(path).startswith("src/") and path.endswith(".cpp")):
        return
    for m in FUNC_DEF.finditer(scrubbed):
        name, params = m.group(1), m.group(2).strip()
        if not params or params == "void":
            continue
        # Local helpers inside anonymous namespaces are not public API;
        # they are only reachable through a guarded entry point.
        before = scrubbed[:m.start()]
        if before.count("namespace {") > before.count("}  // namespace\n"):
            # Heuristic: inside an open anonymous namespace.
            anon_open = before.rfind("namespace {")
            anon_close = before.rfind("}  // namespace")
            if anon_open > anon_close:
                continue
        # Find the body extent by brace matching.
        depth, i = 0, m.end() - 1
        end = len(scrubbed)
        while i < len(scrubbed):
            if scrubbed[i] == "{":
                depth += 1
            elif scrubbed[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
            i += 1
        body = scrubbed[m.end():end]
        lineno = scrubbed[:m.start()].count("\n") + 1
        if not GUARD_TOKENS.search(body):
            yield Finding(
                "entry-guard", path, lineno,
                f"'{name}' takes arguments but has no DASSA_CHECK / "
                "validation in its body",
                key=f"entry-guard:{path}:{name}")


SYNC_EXEMPT_FILES = frozenset({
    "include/dassa/common/sync.hpp",
})
NAKED_SYNC = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|condition_variable(?:_any)?|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock)\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")


def rule_sync_primitive(path, scrubbed, raw):
    """Synchronisation flows through the annotated wrappers in
    include/dassa/common/sync.hpp (dassa::Mutex / SharedMutex / CondVar
    plus the MutexLock / ReaderLock / WriterLock scopes). A naked std
    sync type carries no capability annotation, so Clang's
    -Wthread-safety analysis cannot see what it guards."""
    if path in SYNC_EXEMPT_FILES:
        return
    for lineno, line in iter_lines(scrubbed):
        m = NAKED_SYNC.search(line)
        if m:
            yield Finding(
                "sync-primitive", path, lineno,
                f"naked '{m.group(0)}' outside sync.hpp (use dassa::Mutex"
                " / MutexLock / CondVar so -Wthread-safety can check it)")


SOCKET_LAYER_FILES = frozenset({
    "include/dassa/serve/socket.hpp",
    "src/serve/socket.cpp",
})
# Free-function syscall names only: method spellings (`conn.shutdown()`,
# `listener_->accept()`) are excluded by the lookbehind, and plain
# send/recv stay off the list because mpi::Comm declares methods with
# those names. The socket layer neither sends nor receives outside
# write_full/read_full anyway.
NAKED_SOCKET = re.compile(
    r"(?<![\w.>:])(?:::)?(?:socket|bind|listen|accept4?|connect|sendto|"
    r"recvfrom|sendmsg|recvmsg|setsockopt|getsockname)\s*\("
    r"|#\s*include\s*<sys/(?:socket|un)\.h>")


def rule_no_naked_socket(path, scrubbed, raw):
    """Raw socket syscalls live only in the serve socket layer, which
    owns length-prefixed framing, EINTR retries, MSG_NOSIGNAL, and the
    serve.bytes_* counters. Anywhere else must go through
    serve::Connection / serve::Listener, so no request or response can
    bypass the audited I/O path (or its accounting)."""
    if path in SOCKET_LAYER_FILES:
        return
    for lineno, line in iter_lines(scrubbed):
        m = NAKED_SOCKET.search(line)
        if m:
            yield Finding("no-naked-socket", path, lineno,
                          f"raw socket call '{m.group(0).strip()}' outside "
                          "the serve socket layer (use serve::Connection)")


RULES = [
    rule_no_const_cast,
    rule_no_naked_new,
    rule_dassa_throw,
    rule_counter_prefix,
    rule_include_hygiene,
    rule_no_direct_stderr,
    rule_trace_span_macro,
    rule_no_raw_intrinsics,
    rule_entry_guard,
    rule_sync_primitive,
    rule_no_naked_socket,
]

# tools/ is CLI glue, not library code: argument-parsing idioms
# (<iostream> in arg_parse.hpp, unguarded helpers) are fine there, but
# diagnostics must still go through the structured logger.
TOOLS_RULES = [rule_no_direct_stderr]

# ---------------------------------------------------------------------------
# Self-test fixtures: one positive (must flag) and one negative (must
# stay clean) snippet per rule, run by --self-test / ctest
# tools_das_lint_selftest. Paths are synthetic but shaped like the real
# tree so path-scoped rules fire.
# ---------------------------------------------------------------------------

SELF_TEST_FIXTURES = [
    # (rule, synthetic path, code, expect_finding)
    (rule_no_const_cast, "src/fix/pos.cpp",
     "void f(const int* q) {\n  int* p = const_cast<int*>(q);\n"
     "  (void)p;\n}\n", True),
    (rule_no_const_cast, "src/fix/neg.cpp",
     "void f(const int* q) {\n  const int* p = q;\n  (void)p;\n}\n", False),
    (rule_no_naked_new, "src/fix/pos.cpp",
     "void f() {\n  int* p = new int[3];\n  (void)p;\n}\n", True),
    (rule_no_naked_new, "src/fix/neg.cpp",
     "#include <memory>\nvoid f() {\n"
     "  auto p = std::make_unique<int>(1);\n  (void)p;\n}\n", False),
    (rule_dassa_throw, "src/fix/pos.cpp",
     "void f() {\n  throw std::runtime_error(\"boom\");\n}\n", True),
    (rule_dassa_throw, "src/fix/neg.cpp",
     "void f() {\n  throw InvalidArgument(\"boom\");\n}\n", False),
    (rule_counter_prefix, "src/fix/pos.cpp",
     "void f() {\n  global_counters().add(\"bogus.subsystem.calls\", 1);\n"
     "}\n", True),
    (rule_counter_prefix, "src/fix/neg.cpp",
     "void f() {\n  global_counters().add(\"io.codec.bytes\", 1);\n}\n",
     False),
    (rule_counter_prefix, "src/fix/pos.cpp",
     "void f() {\n"
     "  global_metrics().histogram(\"rogue.lat.decode\").record_ns(1);\n"
     "}\n", True),
    (rule_counter_prefix, "src/fix/neg.cpp",
     "void f() {\n"
     "  global_metrics().histogram(\"serve.lat.decode\").record_ns(1);\n"
     "}\n", False),
    (rule_include_hygiene, "include/dassa/fix/pos.hpp",
     "#include <iostream>\nusing namespace std;\n", True),
    (rule_include_hygiene, "include/dassa/fix/neg.hpp",
     "#pragma once\n#include <vector>\n", False),
    (rule_no_direct_stderr, "src/fix/pos.cpp",
     "#include <iostream>\nvoid f() {\n  std::cerr << \"oops\\n\";\n}\n",
     True),
    (rule_no_direct_stderr, "src/fix/neg.cpp",
     "void f() {\n  DASSA_LOG(kWarn, \"oops\");\n}\n", False),
    (rule_trace_span_macro, "src/fix/pos.cpp",
     "void f() {\n  trace::detail::SpanGuard g(\"cat\", \"name\");\n}\n",
     True),
    (rule_trace_span_macro, "src/fix/neg.cpp",
     "void f() {\n  DASSA_TRACE_SPAN(\"cat\", \"name\");\n}\n", False),
    (rule_no_raw_intrinsics, "src/fix/pos.cpp",
     "#include <immintrin.h>\nvoid f(__m256d* v) {\n  (void)v;\n}\n", True),
    (rule_no_raw_intrinsics, "src/fix/neg.cpp",
     "void f(double* v, std::size_t n) {\n"
     "  dassa::simd::scale(v, n, 2.0);\n}\n", False),
    (rule_no_raw_intrinsics, "src/common/simd.cpp",
     "#include <immintrin.h>\n", False),  # the SIMD layer itself
    (rule_entry_guard, "src/fix/pos.cpp",
     "int scale(int v) {\n  return v * 2;\n}\n", True),
    (rule_entry_guard, "src/fix/neg.cpp",
     "int scale(int v) {\n"
     "  DASSA_CHECK(v >= 0, \"v must be non-negative\");\n"
     "  return v * 2;\n}\n", False),
    (rule_sync_primitive, "src/fix/pos.cpp",
     "#include <mutex>\nstruct S {\n  std::mutex mu;\n};\n", True),
    (rule_sync_primitive, "src/fix/neg.cpp",
     "#include \"dassa/common/sync.hpp\"\nstruct S {\n"
     "  dassa::Mutex mu;\n};\n", False),
    (rule_sync_primitive, "include/dassa/common/sync.hpp",
     "#include <mutex>\nclass Mutex {\n  std::mutex mu_;\n};\n",
     False),  # the wrapper layer itself
    (rule_no_naked_socket, "src/fix/pos.cpp",
     "#include <sys/socket.h>\nvoid f() {\n"
     "  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n  (void)fd;\n}\n",
     True),
    (rule_no_naked_socket, "src/fix/neg.cpp",
     "#include \"dassa/serve/socket.hpp\"\nvoid f() {\n"
     "  auto conn = dassa::serve::connect_local(\"/tmp/s.sock\");\n"
     "  conn.shutdown();\n}\n", False),
    (rule_no_naked_socket, "src/serve/socket.cpp",
     "#include <sys/socket.h>\nvoid f() {\n"
     "  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n  (void)fd;\n}\n",
     False),  # the audited socket layer itself
    (rule_no_naked_socket, "src/serve/stats.cpp",
     "#include \"dassa/serve/socket.hpp\"\nvoid f() {\n"
     "  dassa::serve::Listener listener(\"/tmp/stats.sock\");\n"
     "  auto conn = listener.accept();\n  conn->shutdown();\n}\n",
     False),  # the stats layer is NOT exempt; it must stay on the API
]


def self_test():
    """Run every fixture through its rule; return the exit code."""
    failures = []
    for rule, path, code, expect in SELF_TEST_FIXTURES:
        scrubbed = strip_comments_and_strings(code)
        found = list(rule(path, scrubbed, code))
        if bool(found) != expect:
            want = "a finding" if expect else "no findings"
            got = (", ".join(str(f) for f in found)
                   if found else "none")
            failures.append(
                f"{rule.__name__} on {path}: expected {want}, got {got}")
    for f in failures:
        print(f"self-test FAIL  {f}", file=sys.stderr)
    if failures:
        print(f"das_lint --self-test: {len(failures)} fixture(s) failed",
              file=sys.stderr)
        return 1
    print(f"das_lint --self-test: {len(SELF_TEST_FIXTURES)} fixture(s) ok")
    return 0

# Rules whose findings are ratcheted against tools/das_lint_baseline.txt
# instead of being hard failures. Everything else must stay at zero.
BASELINED_RULES = frozenset({"entry-guard", "no-direct-stderr"})


def lint(repo):
    findings = []
    for root, rules in ((repo / "src", RULES), (repo / "include", RULES),
                        (repo / "tools", TOOLS_RULES)):
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".cpp", ".hpp", ".h"):
                continue
            rel = str(path.relative_to(repo))
            raw = path.read_text(encoding="utf-8", errors="replace")
            scrubbed = strip_comments_and_strings(raw)
            for rule in rules:
                findings.extend(rule(rel, scrubbed, raw))
    return findings


def load_baseline(path):
    if not path.exists():
        return set()
    keys = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=pathlib.Path(__file__).parent.parent,
                        type=pathlib.Path)
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept current entry-guard findings into "
                             "the baseline file")
    parser.add_argument("--self-test", action="store_true",
                        help="run every rule against its positive and "
                             "negative fixtures and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    repo = args.repo.resolve()
    baseline_path = repo / "tools" / "das_lint_baseline.txt"

    findings = lint(repo)
    baseline = load_baseline(baseline_path)

    if args.update_baseline:
        accepted = sorted(f.key for f in findings
                          if f.rule in BASELINED_RULES)
        header = ("# das_lint baseline for the ratcheted rules "
                  "(entry-guard, no-direct-stderr):\n# legacy findings "
                  "accepted as-is. New findings must either be fixed or "
                  "be\n# added here via `python3 tools/das_lint.py "
                  "--update-baseline` in the same\n# review.\n")
        baseline_path.write_text(header + "\n".join(accepted) + "\n")
        print(f"das_lint: baseline updated with {len(accepted)} entries")
        return 0

    fresh = [f for f in findings
             if f.rule not in BASELINED_RULES or f.key not in baseline]
    used = {f.key for f in findings
            if f.rule in BASELINED_RULES and f.key in baseline}
    stale = sorted(baseline - used)

    for f in fresh:
        print(f, file=sys.stderr)
    for key in stale:
        print(f"stale-baseline  {key}  (fixed? remove it from "
              f"{baseline_path.name})", file=sys.stderr)

    checked = len(findings)
    if fresh or stale:
        print(f"das_lint: {len(fresh)} finding(s), {len(stale)} stale "
              "baseline entr(y/ies)", file=sys.stderr)
        return 1
    print(f"das_lint: clean ({checked} baselined finding(s) accepted)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
