// das_query: client CLI for a running das_serve daemon. Issues one
// read over the local socket and prints a summary (or dumps the
// payload); the load-driving multi-client counterpart lives in
// bench/bench_serve.cpp.
//
// Usage:
//   das_query --socket <path> [read selection] [--dump] [--repeat N]
//
// read selection (pick one addressing):
//   --row-off N --row-cnt N --col-off N --col-cnt N   column addressing
//       (counts of 0 = "to the end"; all default to 0, so a bare
//        das_query reads the whole archive)
//   --from yymmddhhmmss --to yymmddhhmmss             time addressing
//       (resolved server-side through the time-interval index;
//        --row-off/--row-cnt still select channels)
//
//   --dump      print every sample, "row col value" per line
//   --repeat N  issue the request N times on one connection (a quick
//               cache-warmth probe; the summary prints per-call stats)
#include <cstdio>
#include <iostream>

#include "arg_parse.hpp"
#include "dassa/common/error.hpp"
#include "dassa/das/time.hpp"
#include "dassa/serve/client.hpp"

namespace {

using namespace dassa;

void summarize(const Slab2D& slab, const std::vector<double>& data) {
  double sum = 0.0;
  double lo = data.empty() ? 0.0 : data.front();
  double hi = lo;
  for (const double v : data) {
    sum += v;
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  const double mean = data.empty() ? 0.0 : sum / static_cast<double>(
                                               data.size());
  std::printf("slab %s  elems %zu  mean %.6g  min %.6g  max %.6g\n",
              slab.str().c_str(), data.size(), mean, lo, hi);
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (!args.has("--socket")) {
    std::cerr << "usage: das_query --socket <path> "
                 "[--row-off N --row-cnt N --col-off N --col-cnt N |\n"
                 "       --from yymmddhhmmss --to yymmddhhmmss "
                 "[--row-off N --row-cnt N]]\n"
                 "[--dump] [--repeat N]\n"
                 "see the header comment of tools/das_query.cpp for "
                 "semantics\n";
    return 2;
  }
  try {
    serve::Client client(args.get("--socket"));
    const std::size_t row_off =
        static_cast<std::size_t>(args.get_long("--row-off", 0));
    const std::size_t row_cnt =
        static_cast<std::size_t>(args.get_long("--row-cnt", 0));
    const long repeat = args.get_long("--repeat", 1);
    DASSA_CHECK(repeat >= 1, "--repeat must be at least 1");

    Slab2D slab;
    std::vector<double> data;
    for (long i = 0; i < repeat; ++i) {
      if (args.has("--from") || args.has("--to")) {
        DASSA_CHECK(args.has("--from") && args.has("--to"),
                    "--from and --to go together");
        const std::int64_t begin_s =
            das::Timestamp::parse(args.get("--from")).epoch_seconds();
        const std::int64_t end_s =
            das::Timestamp::parse(args.get("--to")).epoch_seconds();
        data = client.read_window(begin_s, end_s, row_off, row_cnt, &slab);
      } else {
        slab.row_off = row_off;
        slab.row_cnt = row_cnt;
        slab.col_off =
            static_cast<std::size_t>(args.get_long("--col-off", 0));
        slab.col_cnt =
            static_cast<std::size_t>(args.get_long("--col-cnt", 0));
        serve::ReadRequest req;
        req.addressing = serve::Addressing::kColumns;
        req.row_off = slab.row_off;
        req.row_cnt = slab.row_cnt;
        req.col_off = slab.col_off;
        req.col_cnt = slab.col_cnt;
        serve::ReadResponse resp = client.call(req);
        if (!resp.ok) throw StateError("serve request refused: " + resp.error);
        slab = Slab2D{resp.row_off, resp.col_off, resp.shape.rows,
                      resp.shape.cols};
        data = std::move(resp.data);
      }
      summarize(slab, data);
    }
    if (args.has("--dump")) {
      for (std::size_t r = 0; r < slab.row_cnt; ++r) {
        for (std::size_t c = 0; c < slab.col_cnt; ++c) {
          std::printf("%zu %zu %.17g\n", slab.row_off + r, slab.col_off + c,
                      data[r * slab.col_cnt + c]);
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "das_query: " << e.what() << "\n";
    return 1;
  }
}
