// das_serve: the query-serving daemon (docs/SERVING.md) -- expose one
// archive (a .vca logical file or a single DASH5 file) over a local
// Unix-domain socket. Concurrent clients' overlapping time-window
// reads are coalesced so N nearby requests cost ONE chunk decode
// through the shared archive handle (serve.batch.* counters tell the
// story; bench_serve gates on them).
//
// Usage:
//   das_serve --socket <path> --archive <file.vca|file.dh5>
//             [--workers N]        union-read worker pool (default 4)
//             [--max-queue N]      admission queue capacity (default 64)
//             [--max-batch N]      requests per coalesce round (default 16)
//             [--coalesce-us US]   dispatcher hold time (default 500)
//             [--gap-cols N]       column gap still shared (default 0)
//             [--no-batching]      one union read per request
//             [--slow-ms MS]       structured serve.slow_request log for
//                                  requests over MS end-to-end (default 0: off)
//             [--no-request-tracing] disable per-stage timestamps (the
//                                  serve.lat.* histograms stay empty)
//             [--telemetry out.jsonl] counter/gauge timeline + latency
//                                  histograms (serve.request above all)
//             [--telemetry-period-ms MS] [--log-json path] [--log-level L]
//
// Runs until SIGINT/SIGTERM, then drains gracefully: admitted requests
// are answered, late ones get an explicit kShuttingDown refusal.
// SIGUSR1 flushes the validated telemetry JSONL mid-run (needs
// --telemetry); the daemon keeps serving. Live introspection without
// signals: das_top polls the kStats message on the main socket.
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "arg_parse.hpp"
#include "dassa/common/counters.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/telemetry.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/serve/server.hpp"

namespace {

using namespace dassa;

std::atomic<bool> g_stop{false};
std::atomic<bool> g_flush{false};

void handle_signal(int) { g_stop.store(true); }

void handle_flush(int) { g_flush.store(true); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  throw InvalidArgument("unknown log level: " + name);
}

/// One structured record for the serve.* counters after the drain.
void log_serve_counters() {
  std::string line;
  for (const auto& [name, value] : global_counters().snapshot()) {
    if (name.rfind("serve.", 0) == 0 || name.rfind("io.index.", 0) == 0) {
      line += ' ';
      line += name;
      line += '=';
      line += std::to_string(value);
    }
  }
  if (!line.empty()) {
    DASSA_SLOG(kInfo, "serve.counters") << line;
  }
}

/// Write + re-parse + validate the telemetry JSONL. `final_report`
/// additionally prints the health report to stdout -- the end-of-run
/// path; SIGUSR1 flushes skip it so a live daemon's stdout stays quiet.
void export_telemetry(const std::string& path,
                      const telemetry::TelemetrySampler& sampler,
                      bool final_report) {
  telemetry::TelemetryFile file;
  file.meta["tool"] = "das_serve";
  file.meta["pipeline"] = "serve";
  file.samples = sampler.timeline();
  for (const auto& [name, h] : global_metrics().snapshot()) {
    telemetry::HistRecord rec;
    rec.name = name;
    rec.count = h.count;
    rec.total_ns = h.total_ns;
    rec.p50_ns = h.quantile_ns(0.50);
    rec.p95_ns = h.quantile_ns(0.95);
    rec.p99_ns = h.quantile_ns(0.99);
    rec.buckets = h.buckets;
    file.hists.push_back(std::move(rec));
  }
  {
    std::ofstream out(path);
    DASSA_CHECK(out.good(), "cannot open telemetry output file: " + path);
    telemetry::write_telemetry_file(out, file);
  }
  std::ifstream back(path);
  std::ostringstream text;
  text << back.rdbuf();
  const telemetry::TelemetryFile parsed =
      telemetry::parse_telemetry_jsonl(text.str());
  telemetry::validate_telemetry_file(parsed);
  DASSA_SLOG(kInfo, "serve.telemetry")
      .field("path", path)
      .field("samples", static_cast<std::uint64_t>(parsed.samples.size()))
      .field("hists", static_cast<std::uint64_t>(parsed.hists.size()));
  if (final_report) telemetry::write_health_report(std::cout, parsed);
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (!args.has("--socket") || !args.has("--archive")) {
    std::cerr << "usage: das_serve --socket <path> "
                 "--archive <file.vca|file.dh5>\n"
                 "[--workers N] [--max-queue N] [--max-batch N] "
                 "[--coalesce-us US] [--gap-cols N] [--no-batching]\n"
                 "[--slow-ms MS] [--no-request-tracing]\n"
                 "[--telemetry out.jsonl] [--telemetry-period-ms MS] "
                 "[--log-json path] [--log-level L]\n"
                 "SIGUSR1 flushes the telemetry JSONL mid-run; das_top "
                 "polls live stats over the socket\n"
                 "see the header comment of tools/das_serve.cpp for "
                 "semantics\n";
    return 2;
  }
  try {
    set_log_level(parse_log_level(args.get("--log-level", "info")));
    if (args.has("--log-json")) set_log_file(args.get("--log-json"));

    telemetry::SamplerConfig sampler_config;
    sampler_config.period = std::chrono::milliseconds(
        args.get_long("--telemetry-period-ms", 25));
    telemetry::TelemetrySampler sampler(sampler_config);
    if (args.has("--telemetry")) {
      trace::set_enabled(true);
      sampler.start();
    }

    serve::ServeConfig cfg;
    cfg.socket_path = args.get("--socket");
    cfg.archive = args.get("--archive");
    cfg.workers = static_cast<std::size_t>(args.get_long("--workers", 4));
    cfg.queue_capacity =
        static_cast<std::size_t>(args.get_long("--max-queue", 64));
    cfg.max_batch =
        static_cast<std::size_t>(args.get_long("--max-batch", 16));
    cfg.coalesce_window_us =
        static_cast<std::uint64_t>(args.get_long("--coalesce-us", 500));
    cfg.gap_cols = static_cast<std::size_t>(args.get_long("--gap-cols", 0));
    cfg.batching = !args.has("--no-batching");
    cfg.request_tracing = !args.has("--no-request-tracing");
    cfg.slow_ns =
        static_cast<std::uint64_t>(args.get_long("--slow-ms", 0)) * 1000000;

    serve::Server server(cfg);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGUSR1, handle_flush);
    server.start();
    std::cout << "das_serve: listening on " << cfg.socket_path << " ("
              << server.shape().str() << " from " << cfg.archive << ")\n";
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (g_flush.exchange(false) && args.has("--telemetry")) {
        sampler.tick();
        export_telemetry(args.get("--telemetry"), sampler,
                         /*final_report=*/false);
      }
    }
    server.stop();
    log_serve_counters();

    if (args.has("--telemetry")) {
      sampler.stop();
      sampler.tick();
      export_telemetry(args.get("--telemetry"), sampler,
                       /*final_report=*/true);
    }
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "serve.fail") << e.what();
    return 1;
  }
}
