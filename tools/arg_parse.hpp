// Minimal command-line flag parser shared by the DASSA tools.
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace dassa::tools {

/// Parses "--flag value", "-f value" and bare "--switch" arguments.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind('-', 0) == 0) {
        if (i + 1 < argc && std::string(argv[i + 1]).rfind('-', 0) != 0) {
          values_[arg] = argv[++i];
        } else {
          values_[arg] = "";
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  [[nodiscard]] bool has(const std::string& flag) const {
    return values_.count(flag) > 0;
  }

  [[nodiscard]] std::string get(const std::string& flag,
                                const std::string& fallback = "") const {
    auto it = values_.find(flag);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] long get_long(const std::string& flag, long fallback) const {
    auto it = values_.find(flag);
    return it == values_.end() ? fallback : std::stol(it->second);
  }

  [[nodiscard]] double get_double(const std::string& flag,
                                  double fallback) const {
    auto it = values_.find(flag);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dassa::tools
