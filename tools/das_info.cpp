// das_info: print the metadata of a DASH5 file or a VCA logical file,
// in the hierarchical key-value layout of paper Fig. 4.
//
// --codec-bench additionally times every codec stage of a v3 file on
// the file's *own* chunk payloads (not synthetic data), so the
// reported GB/s reflect what this file actually costs to read and
// write on this machine.
//
// Usage: das_info <file.dh5 | file.vca> [--objects N] [--codec-bench]
#include <iomanip>
#include <iostream>

#include "arg_parse.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/timer.hpp"
#include "dassa/io/codec.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/io/file_io.hpp"
#include "dassa/io/vca.hpp"

namespace {

void print_kv(const dassa::io::KvList& kv, const std::string& indent) {
  for (const auto& [k, v] : kv.items()) {
    std::cout << indent << k << " : " << v << "\n";
  }
}

double gibps(std::uint64_t bytes, double seconds) {
  return static_cast<double>(bytes) /
         (seconds * 1024.0 * 1024.0 * 1024.0);
}

/// Per-stage codec throughput on the file's actual chunks: decode the
/// compressed chunks once, re-encode stage by stage to recover every
/// intermediate stream, then time each stage in both directions
/// (best of 3 passes over all sampled chunks, up to ~64 MiB of raw).
void codec_bench(const dassa::io::Dash5File& file, const std::string& path) {
  using namespace dassa;
  constexpr std::uint64_t kSampleCap = 64ull << 20;
  constexpr int kReps = 3;
  const io::CodecSpec spec = file.codec();
  const std::size_t esize = io::dtype_size(file.dtype());

  io::InputFile in(path);
  std::vector<std::vector<std::byte>> payloads;
  std::vector<std::size_t> raw_sizes;
  std::uint64_t sampled_raw = 0;
  std::size_t raw_fallback = 0;
  for (const auto& e : file.chunk_index()) {
    if (e.codec == 0) {
      ++raw_fallback;  // stored uncompressed: no codec work to time
      continue;
    }
    if (sampled_raw >= kSampleCap) break;
    payloads.push_back(
        in.read_vec(e.offset, static_cast<std::size_t>(e.csize)));
    raw_sizes.push_back(static_cast<std::size_t>(e.raw_size));
    sampled_raw += e.raw_size;
  }
  std::cout << "\nCodec bench: " << spec.str() << " on "
            << payloads.size() << " chunks (" << sampled_raw
            << " raw bytes";
  if (raw_fallback > 0) {
    std::cout << "; " << raw_fallback << " raw-fallback chunks skipped";
  }
  std::cout << ")\n";
  if (payloads.empty()) return;

  // streams[0] = raw chunk bytes; streams[k] = after stage k. The
  // stage-wise re-encode reproduces the stored stream bit-for-bit
  // (encoders are deterministic), so timings run on real data.
  const std::size_t nstages = spec.chain.size();
  std::vector<std::vector<std::vector<std::byte>>> streams(nstages + 1);
  streams[0].reserve(payloads.size());
  for (std::size_t c = 0; c < payloads.size(); ++c) {
    streams[0].push_back(
        io::decode_chain(spec, payloads[c], esize, raw_sizes[c]));
  }
  for (std::size_t k = 0; k < nstages; ++k) {
    const io::Codec* stage =
        io::CodecRegistry::instance().find(spec.chain[k]);
    streams[k + 1].reserve(payloads.size());
    for (const auto& prev : streams[k]) {
      streams[k + 1].push_back(stage->encode(prev, esize));
    }
  }

  std::cout << std::left << std::setw(10) << "  stage" << std::right
            << std::setw(12) << "in_bytes" << std::setw(12) << "out_bytes"
            << std::setw(9) << "ratio" << std::setw(12) << "enc_GiB/s"
            << std::setw(12) << "dec_GiB/s" << "\n";
  for (std::size_t k = 0; k < nstages; ++k) {
    const io::Codec* stage =
        io::CodecRegistry::instance().find(spec.chain[k]);
    std::uint64_t in_bytes = 0;
    std::uint64_t out_bytes = 0;
    for (const auto& s : streams[k]) in_bytes += s.size();
    for (const auto& s : streams[k + 1]) out_bytes += s.size();
    double enc_best = 1e300;
    double dec_best = 1e300;
    for (int r = 0; r < kReps; ++r) {
      WallTimer enc_timer;
      for (const auto& s : streams[k]) (void)stage->encode(s, esize);
      enc_best = std::min(enc_best, enc_timer.seconds());
      WallTimer dec_timer;
      for (std::size_t c = 0; c < payloads.size(); ++c) {
        (void)stage->decode(streams[k + 1][c], esize,
                            streams[k][c].size());
      }
      dec_best = std::min(dec_best, dec_timer.seconds());
    }
    std::cout << "  " << std::left << std::setw(8) << stage->name()
              << std::right << std::setw(12) << in_bytes << std::setw(12)
              << out_bytes << std::setw(9) << std::setprecision(4)
              << static_cast<double>(in_bytes) /
                     static_cast<double>(out_bytes)
              << std::setw(12) << gibps(in_bytes, enc_best)
              << std::setw(12) << gibps(in_bytes, dec_best) << "\n";
  }
  // Whole chain, through the same entry points the reader uses.
  std::uint64_t stored_bytes = 0;
  for (const auto& p : payloads) stored_bytes += p.size();
  double enc_best = 1e300;
  double dec_best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    WallTimer enc_timer;
    for (const auto& s : streams[0]) (void)io::encode_chain(spec, s, esize);
    enc_best = std::min(enc_best, enc_timer.seconds());
    WallTimer dec_timer;
    for (std::size_t c = 0; c < payloads.size(); ++c) {
      (void)io::decode_chain(spec, payloads[c], esize, raw_sizes[c]);
    }
    dec_best = std::min(dec_best, dec_timer.seconds());
  }
  std::cout << "  " << std::left << std::setw(8) << "chain" << std::right
            << std::setw(12) << sampled_raw << std::setw(12) << stored_bytes
            << std::setw(9) << std::setprecision(4)
            << static_cast<double>(sampled_raw) /
                   static_cast<double>(stored_bytes)
            << std::setw(12) << gibps(sampled_raw, enc_best)
            << std::setw(12) << gibps(sampled_raw, dec_best) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dassa;
  const tools::Args args(argc, argv);
  if (args.positional().size() != 1) {
    std::cerr << "usage: das_info <file.dh5 | file.vca> [--objects N] "
                 "[--codec-bench]\n";
    return 2;
  }
  const std::string path = args.positional().front();
  const auto max_objects =
      static_cast<std::size_t>(args.get_long("--objects", 3));
  try {
    if (path.size() > 4 && path.substr(path.size() - 4) == ".vca") {
      const io::Vca vca = io::Vca::load(path);
      std::cout << "VCA logical file: " << path << "\n";
      std::cout << "Merged shape : " << vca.shape() << "\n";
      print_kv(vca.global_meta(), "  ");
      std::cout << "Members (" << vca.members().size() << "):\n";
      for (const auto& m : vca.members()) {
        std::cout << "  " << m.path << "  " << m.shape << "\n";
      }
      return 0;
    }

    const io::Dash5File file(path);
    std::cout << "Root of DAS metadata in DASH5 file: " << path << "\n";
    print_kv(file.global_meta(), "  ");
    std::cout << "Dataset : " << file.shape() << " "
              << (file.dtype() == io::DType::kF64 ? "float64" : "float32")
              << "\n";
    std::cout << "Version : " << static_cast<int>(file.version()) << "\n";
    if (file.layout() == io::Layout::kChunked) {
      std::cout << "Layout  : chunked " << file.chunk().rows << "x"
                << file.chunk().cols << "\n";
    } else {
      std::cout << "Layout  : contiguous\n";
    }
    if (file.version() >= 3) {
      std::cout << "Codec   : " << file.codec().str() << "\n";
      std::uint64_t raw = 0;
      std::uint64_t stored = 0;
      std::size_t raw_chunks = 0;
      for (const auto& e : file.chunk_index()) {
        raw += e.raw_size;
        stored += e.csize;
        if (e.codec == 0) ++raw_chunks;
      }
      std::cout << "Chunks  : " << file.chunk_index().size() << " tiles, "
                << raw << " raw -> " << stored << " stored bytes";
      if (stored > 0) {
        std::cout << " (" << static_cast<double>(raw) /
                                 static_cast<double>(stored)
                  << "x)";
      }
      std::cout << ", " << raw_chunks << " stored raw\n";
    }
    const auto& objects = file.objects();
    std::cout << "Objects : " << objects.size() << "\n";
    for (std::size_t i = 0; i < std::min(max_objects, objects.size()); ++i) {
      std::cout << "  Object Path: " << objects[i].path << "\n";
      print_kv(objects[i].kv, "    ");
    }
    if (objects.size() > max_objects) {
      std::cout << "  ... " << objects.size() - max_objects
                << " more objects ...\n";
    }
    if (args.has("--codec-bench")) {
      DASSA_CHECK(file.version() >= 3 && !file.codec().empty(),
                  "--codec-bench needs a v3 file with a codec chain");
      codec_bench(file, path);
    }
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "info.fail") << e.what();
    return 1;
  }
}
