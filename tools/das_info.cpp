// das_info: print the metadata of a DASH5 file or a VCA logical file,
// in the hierarchical key-value layout of paper Fig. 4.
//
// Usage: das_info <file.dh5 | file.vca> [--objects N]
#include <iostream>

#include "arg_parse.hpp"
#include "dassa/common/log.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/io/vca.hpp"

namespace {

void print_kv(const dassa::io::KvList& kv, const std::string& indent) {
  for (const auto& [k, v] : kv.items()) {
    std::cout << indent << k << " : " << v << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dassa;
  const tools::Args args(argc, argv);
  if (args.positional().size() != 1) {
    std::cerr << "usage: das_info <file.dh5 | file.vca> [--objects N]\n";
    return 2;
  }
  const std::string path = args.positional().front();
  const auto max_objects =
      static_cast<std::size_t>(args.get_long("--objects", 3));
  try {
    if (path.size() > 4 && path.substr(path.size() - 4) == ".vca") {
      const io::Vca vca = io::Vca::load(path);
      std::cout << "VCA logical file: " << path << "\n";
      std::cout << "Merged shape : " << vca.shape() << "\n";
      print_kv(vca.global_meta(), "  ");
      std::cout << "Members (" << vca.members().size() << "):\n";
      for (const auto& m : vca.members()) {
        std::cout << "  " << m.path << "  " << m.shape << "\n";
      }
      return 0;
    }

    const io::Dash5File file(path);
    std::cout << "Root of DAS metadata in DASH5 file: " << path << "\n";
    print_kv(file.global_meta(), "  ");
    std::cout << "Dataset : " << file.shape() << " "
              << (file.dtype() == io::DType::kF64 ? "float64" : "float32")
              << "\n";
    std::cout << "Version : " << static_cast<int>(file.version()) << "\n";
    if (file.layout() == io::Layout::kChunked) {
      std::cout << "Layout  : chunked " << file.chunk().rows << "x"
                << file.chunk().cols << "\n";
    } else {
      std::cout << "Layout  : contiguous\n";
    }
    if (file.version() >= 3) {
      std::cout << "Codec   : " << file.codec().str() << "\n";
      std::uint64_t raw = 0;
      std::uint64_t stored = 0;
      std::size_t raw_chunks = 0;
      for (const auto& e : file.chunk_index()) {
        raw += e.raw_size;
        stored += e.csize;
        if (e.codec == 0) ++raw_chunks;
      }
      std::cout << "Chunks  : " << file.chunk_index().size() << " tiles, "
                << raw << " raw -> " << stored << " stored bytes";
      if (stored > 0) {
        std::cout << " (" << static_cast<double>(raw) /
                                 static_cast<double>(stored)
                  << "x)";
      }
      std::cout << ", " << raw_chunks << " stored raw\n";
    }
    const auto& objects = file.objects();
    std::cout << "Objects : " << objects.size() << "\n";
    for (std::size_t i = 0; i < std::min(max_objects, objects.size()); ++i) {
      std::cout << "  Object Path: " << objects[i].path << "\n";
      print_kv(objects[i].kv, "    ");
    }
    if (objects.size() > max_objects) {
      std::cout << "  ... " << objects.size() - max_objects
                << " more objects ...\n";
    }
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "info.fail") << e.what();
    return 1;
  }
}
