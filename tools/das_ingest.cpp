// das_ingest: the streaming ingest daemon (docs/INGEST.md) -- watch a
// spool directory for newly arriving DASH5 acquisition files, admit
// them through a bounded backpressure queue, grow a live VCA, and run
// the local-similarity detector over a sliding window whose emitted
// output is byte-identical to an offline das_analyze run over the same
// files.
//
// Usage:
//   das_ingest --spool <dir> --out <result.dh5>
//              [--window N]    files per analysis window (default 4)
//              [--overlap N]   files shared between windows (default 1)
//              [--max-queue N] admission queue capacity (default 8)
//              [--poll-ms MS]  spool poll period (default 250)
//              [--once]        drain the spool as-is, then exit (no
//                              waiting for new files; CI / bench mode)
//              [--vca-index P] republish a .vca index atomically after
//                              every admitted file
//              [--nodes N] [--cores N] [--mpi-per-core]   engine layout
//              [--window-half M] [--lag-half L] [--channel-offset K]
//              [--no-detect]   skip per-window + final event detection
//   any mode:
//     [--stats-socket <path>] answer das_top's kStats polls on a
//                             dedicated socket (live counters, gauges,
//                             and exact histogram buckets)
//     [--telemetry out.jsonl] sample counters/gauges (incl. the
//                             ingest.queue.depth gauge) during the run,
//                             write the validated "dassa.telemetry.v1"
//                             timeline + the ingest latency histograms,
//                             and print the health report to stdout
//     [--telemetry-period-ms MS] [--log-json path] [--log-level L]
//
// Without --once the daemon runs until SIGINT/SIGTERM, then shuts down
// gracefully: the producer stops polling, the queue is closed, every
// already-admitted file is drained through the driver, the final
// window is processed, and the (partial) result is still written.
// SIGUSR1 flushes the validated telemetry JSONL mid-run (needs
// --telemetry); ingestion keeps running.
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "arg_parse.hpp"
#include "dassa/common/counters.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/telemetry.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/das/events.hpp"
#include "dassa/ingest/driver.hpp"
#include "dassa/ingest/queue.hpp"
#include "dassa/ingest/spool.hpp"
#include "dassa/serve/stats.hpp"

namespace {

using namespace dassa;

std::atomic<bool> g_stop{false};
std::atomic<bool> g_flush{false};

void handle_signal(int) { g_stop.store(true); }

void handle_flush(int) { g_flush.store(true); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  throw InvalidArgument("unknown log level: " + name);
}

/// One structured record for the ingest.* counters after the drain.
void log_ingest_counters() {
  std::string line;
  for (const auto& [name, value] : global_counters().snapshot()) {
    if (name.rfind("ingest.", 0) == 0) {
      line += ' ';
      line += name;
      line += '=';
      line += std::to_string(value);
    }
  }
  if (!line.empty()) {
    DASSA_SLOG(kInfo, "ingest.counters") << line;
  }
}

/// Telemetry export mirroring das_analyze: assemble, write, re-parse,
/// validate, then print the health report. The ingest run's latency
/// distributions (ingest.file_to_detection above all) ride along as
/// hist records -- that is what bench_ingest gates p50/p99 on.
/// `final_report` additionally prints the health report to stdout --
/// the end-of-run path; SIGUSR1 flushes skip it.
void export_telemetry(const std::string& path,
                      const core::EngineConfig& engine,
                      const telemetry::TelemetrySampler& sampler,
                      bool final_report) {
  telemetry::TelemetryFile file;
  file.meta["tool"] = "das_ingest";
  file.meta["pipeline"] = "similarity";
  file.meta["world_size"] = std::to_string(engine.world_size());
  file.meta["threads_per_rank"] = std::to_string(engine.threads_per_rank());
  file.samples = sampler.timeline();
  for (const auto& [name, h] : global_metrics().snapshot()) {
    telemetry::HistRecord rec;
    rec.name = name;
    rec.count = h.count;
    rec.total_ns = h.total_ns;
    rec.p50_ns = h.quantile_ns(0.50);
    rec.p95_ns = h.quantile_ns(0.95);
    rec.p99_ns = h.quantile_ns(0.99);
    rec.buckets = h.buckets;
    file.hists.push_back(std::move(rec));
  }
  {
    std::ofstream out(path);
    DASSA_CHECK(out.good(), "cannot open telemetry output file: " + path);
    telemetry::write_telemetry_file(out, file);
  }
  std::ifstream back(path);
  std::ostringstream text;
  text << back.rdbuf();
  const telemetry::TelemetryFile parsed =
      telemetry::parse_telemetry_jsonl(text.str());
  telemetry::validate_telemetry_file(parsed);
  DASSA_SLOG(kInfo, "ingest.telemetry")
      .field("path", path)
      .field("samples", static_cast<std::uint64_t>(parsed.samples.size()))
      .field("hists", static_cast<std::uint64_t>(parsed.hists.size()))
      .field("dropped", sampler.dropped());
  if (final_report) telemetry::write_health_report(std::cout, parsed);
}

/// Producer loop: poll the spool, push admitted files into the queue.
/// Exits (closing the queue) on shutdown, or -- in once mode -- as soon
/// as a poll admits nothing and no file is still proving stability.
void produce(ingest::SpoolWatcher& watcher,
             ingest::BoundedQueue<ingest::SpoolFile>& queue, bool once,
             long poll_ms) {
  while (!g_stop.load()) {
    std::vector<ingest::SpoolFile> admitted;
    try {
      admitted = watcher.poll();
    } catch (const std::exception& e) {
      DASSA_SLOG(kError, "ingest.poll_fail") << e.what();
      break;
    }
    for (ingest::SpoolFile& f : admitted) {
      if (!queue.push(std::move(f))) return;  // queue closed under us
    }
    if (once) {
      if (admitted.empty() && watcher.pending() == 0) break;
      continue;  // no sleep: drain the pre-populated spool flat out
    }
    for (long slept = 0; slept < poll_ms && !g_stop.load(); slept += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  queue.close();
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (!args.has("--spool") || !(args.has("--out") || args.has("-o"))) {
    std::cerr << "usage: das_ingest --spool <dir> --out <result.dh5> "
                 "[--window N] [--overlap N] [--max-queue N] "
                 "[--poll-ms MS] [--once] [--vca-index P]\n"
                 "[--nodes N] [--cores N] [--mpi-per-core] "
                 "[--window-half M] [--lag-half L] [--channel-offset K] "
                 "[--no-detect]\n"
                 "[--stats-socket <path>] "
                 "[--telemetry out.jsonl] [--telemetry-period-ms MS] "
                 "[--log-json path] [--log-level L]\n"
                 "SIGUSR1 flushes the telemetry JSONL mid-run; das_top "
                 "polls live stats via --stats-socket\n"
                 "see the header comment of tools/das_ingest.cpp for "
                 "semantics\n";
    return 2;
  }
  try {
    set_log_level(parse_log_level(args.get("--log-level", "info")));
    if (args.has("--log-json")) set_log_file(args.get("--log-json"));

    telemetry::SamplerConfig sampler_config;
    sampler_config.period = std::chrono::milliseconds(
        args.get_long("--telemetry-period-ms", 25));
    telemetry::TelemetrySampler sampler(sampler_config);
    if (args.has("--telemetry")) {
      trace::set_enabled(true);
      sampler.start();
    }

    ingest::IngestConfig cfg;
    cfg.window_files = static_cast<std::size_t>(args.get_long("--window", 4));
    cfg.overlap_files =
        static_cast<std::size_t>(args.get_long("--overlap", 1));
    cfg.similarity.window_half =
        static_cast<std::size_t>(args.get_long("--window-half", 25));
    cfg.similarity.lag_half =
        static_cast<std::size_t>(args.get_long("--lag-half", 10));
    cfg.similarity.channel_offset =
        static_cast<std::size_t>(args.get_long("--channel-offset", 1));
    cfg.detect = !args.has("--no-detect");
    cfg.engine.nodes = static_cast<int>(args.get_long("--nodes", 2));
    cfg.engine.cores_per_node =
        static_cast<int>(args.get_long("--cores", 2));
    cfg.engine.mode = args.has("--mpi-per-core")
                          ? core::EngineMode::kMpiPerCore
                          : core::EngineMode::kHybrid;
    cfg.vca_index_path = args.get("--vca-index", "");

    const auto queue = std::make_shared<ingest::BoundedQueue<
        ingest::SpoolFile>>(
        static_cast<std::size_t>(args.get_long("--max-queue", 8)));
    telemetry::register_gauge("ingest.queue.depth", [queue] {
      return static_cast<double>(queue->depth());
    });

    ingest::SpoolWatcher watcher(
        ingest::SpoolConfig{args.get("--spool"), "quarantine"});
    ingest::IngestDriver driver(cfg);
    driver.on_events = [](const std::vector<das::DetectedEvent>& events) {
      for (const das::DetectedEvent& e : events) {
        DASSA_SLOG(kInfo, "ingest.event")
            .field("type", das::event_class_name(e.type))
            .field("channel_lo", e.channel_lo)
            .field("channel_hi", e.channel_hi)
            .field("time_lo", e.time_lo)
            .field("time_hi", e.time_hi)
            .field("peak", e.peak_similarity);
      }
    };

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGUSR1, handle_flush);

    // The main thread blocks in queue->pop() below, so mid-run
    // telemetry flushes need their own watcher thread: it polls the
    // g_flush latch the SIGUSR1 handler sets (handler-safe: the
    // handler only stores an atomic) and exports off the hot path.
    std::atomic<bool> flusher_stop{false};
    std::thread flusher;
    // Unwind guard: if anything below throws (a bad --stats-socket
    // path, spool or driver errors), stack unwinding would destroy a
    // still-joinable flusher and terminate() before reaching the
    // catch-and-log path -- so stopping and joining it is the
    // destructor's job, not the happy path's.
    struct FlusherJoiner {
      std::atomic<bool>& stop;
      std::thread& thread;
      ~FlusherJoiner() {
        stop.store(true);
        if (thread.joinable()) thread.join();
      }
    } flusher_joiner{flusher_stop, flusher};
    if (args.has("--telemetry")) {
      flusher = std::thread([&args, &cfg, &sampler, &flusher_stop] {
        while (!flusher_stop.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          if (g_flush.exchange(false)) {
            sampler.tick();
            export_telemetry(args.get("--telemetry"), cfg.engine, sampler,
                             /*final_report=*/false);
          }
        }
      });
    }

    // Live introspection: das_ingest's primary "socket" is the spool
    // directory, so kStats gets a dedicated listener.
    std::unique_ptr<serve::StatsListener> stats;
    if (args.has("--stats-socket")) {
      stats = std::make_unique<serve::StatsListener>(
          args.get("--stats-socket"));
      stats->start();
    }

    const bool once = args.has("--once");
    const long poll_ms = args.get_long("--poll-ms", 250);
    DASSA_SLOG(kInfo, "ingest.start")
        .field("spool", args.get("--spool"))
        .field("window_files", cfg.window_files)
        .field("overlap_files", cfg.overlap_files)
        .field("queue_capacity", queue->capacity())
        .field("once", once);

    std::thread producer(
        [&watcher, queue, once, poll_ms] {
          produce(watcher, *queue, once, poll_ms);
        });
    // Same unwind hazard as the flusher: driver.add_file below can
    // throw, and the producer may be blocked in queue->push(), so the
    // guard closes the queue to unblock it before joining.
    struct ProducerJoiner {
      std::shared_ptr<ingest::BoundedQueue<ingest::SpoolFile>> queue;
      std::thread& thread;
      ~ProducerJoiner() {
        if (thread.joinable()) {
          g_stop.store(true);
          queue->close();
          thread.join();
        }
      }
    } producer_joiner{queue, producer};
    while (auto file = queue->pop()) {
      driver.add_file(*file);
    }
    producer.join();

    const ingest::IngestResult result = driver.finish();
    DASSA_SLOG(kInfo, "ingest.drained")
        .field("files", result.files)
        .field("windows", result.windows)
        .field("quarantined", watcher.quarantined())
        .field("events", static_cast<std::uint64_t>(result.events.size()));
    log_ingest_counters();

    const std::string out_path =
        args.has("--out") ? args.get("--out") : args.get("-o");
    if (result.similarity.shape.size() > 0) {
      io::Dash5Header header;
      header.shape = result.similarity.shape;
      header.global = result.global_meta;
      io::dash5_write(out_path, header, result.similarity.data);
      DASSA_SLOG(kInfo, "ingest.output").field("path", out_path);
      if (result.global_meta.contains(io::meta::kSamplingFrequencyHz)) {
        const double hz =
            result.global_meta.get_f64(io::meta::kSamplingFrequencyHz);
        for (const das::DetectedEvent& e : result.events) {
          std::cout << das::describe(e, hz) << "\n";
        }
      }
    } else {
      DASSA_SLOG(kWarn, "ingest.no_output")
          << "no files were ingested; nothing written to " << out_path;
    }

    if (stats) stats->stop();
    if (args.has("--telemetry")) {
      flusher_stop.store(true);
      flusher.join();
      sampler.stop();
      sampler.tick();  // final sample: the completed drain's totals
      export_telemetry(args.get("--telemetry"), cfg.engine, sampler,
                       /*final_report=*/true);
    }
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "ingest.fail") << e.what();
    return 1;
  }
}
