// das_top: live view of a running DASSA daemon (docs/OBSERVABILITY.md).
//
// Polls the kStats protocol (serve/stats.hpp) over the daemon's socket
// -- das_serve answers on its main socket, das_ingest on its
// --stats-socket listener -- and diffs consecutive snapshots into an
// interval view: request throughput, per-stage p50/p99 from the
// serve.lat.* histograms, admission-queue depth, coalesce ratio,
// chunk-cache hit rate, and the ingest admission->detection latency.
// The histogram diff is bucket-exact (HistogramSnapshot::diff), so the
// interval quantiles are computed from exactly the requests that
// finished inside the interval, not a decaying approximation.
//
// Usage:
//   das_top --socket <path>
//           [--interval-ms MS]   poll period (default 1000)
//           [--count N]          samples then exit (default: until SIGINT)
//           [--once]             one snapshot, print, exit
//           [--prom]             Prometheus text exposition (with --once)
//
// das_health's zero-progress stall heuristic runs on the streamed
// samples: an interval where no counter moved (excluding the sampler's
// own telemetry.samples tick and the stats.* counters das_top itself
// advances by polling) while spans were open or requests were queued
// is flagged STALL on the spot, not post-mortem.
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <unistd.h>

#include "arg_parse.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/log.hpp"
#include "dassa/serve/server.hpp"
#include "dassa/serve/stats.hpp"

namespace {

using namespace dassa;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

std::uint64_t counter_of(const serve::StatsSnapshot& s,
                         const std::string& name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

double gauge_of(const serve::StatsSnapshot& s, const std::string& name,
                double fallback) {
  const auto it = s.gauges.find(name);
  return it == s.gauges.end() ? fallback : it->second;
}

/// Counter delta, clamped at zero so a daemon restart between polls
/// shows as "no progress", never as a wrapped-around flood.
std::uint64_t delta(const serve::StatsSnapshot& cur,
                    const serve::StatsSnapshot& prev,
                    const std::string& name) {
  const std::uint64_t now = counter_of(cur, name);
  const std::uint64_t before = counter_of(prev, name);
  return now >= before ? now - before : now;
}

/// Prometheus metric name: dots and anything else outside
/// [a-zA-Z0-9_] become underscores.
std::string prom_name(const std::string& name) {
  std::string out = "dassa_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

/// Prometheus text exposition of one cumulative snapshot: counters as
/// counters, gauges as gauges, latency histograms as native Prometheus
/// histograms in seconds (bucket i's upper bound is 2^(i+1) ns).
void write_prometheus(std::ostream& os, const serve::StatsSnapshot& s) {
  for (const auto& [name, value] : s.counters) {
    const std::string p = prom_name(name) + "_total";
    os << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : s.gauges) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << value << "\n";
  }
  char buf[160];
  for (const auto& [name, h] : s.hists) {
    const std::string p = prom_name(name) + "_seconds";
    os << "# TYPE " << p << " histogram\n";
    std::size_t highest = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] != 0) highest = i;
    }
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= highest; ++i) {
      cum += h.buckets[i];
      const double le = std::ldexp(1.0, static_cast<int>(i) + 1) / 1e9;
      std::snprintf(buf, sizeof buf, "%s_bucket{le=\"%.9g\"} %llu\n",
                    p.c_str(), le, static_cast<unsigned long long>(cum));
      os << buf;
    }
    os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    std::snprintf(buf, sizeof buf, "%s_sum %.9f\n", p.c_str(),
                  static_cast<double>(h.total_ns) / 1e9);
    os << buf;
    os << p << "_count " << h.count << "\n";
  }
}

/// One histogram row of the live view: interval count, rate, and
/// interval-exact p50/p99 in microseconds.
void print_hist_row(const std::string& label, const HistogramSnapshot& d,
                    double dt_s) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "  %-28s %8llu %9.1f/s %10.1f %10.1f\n", label.c_str(),
                static_cast<unsigned long long>(d.count),
                dt_s > 0 ? static_cast<double>(d.count) / dt_s : 0.0,
                d.quantile_ns(0.50) / 1e3, d.quantile_ns(0.99) / 1e3);
  std::cout << buf;
}

/// The live frame: everything the ISSUE's dashboard names, computed
/// from the delta between two snapshots.
void print_frame(const serve::StatsSnapshot& cur,
                 const serve::StatsSnapshot& prev, bool clear_screen) {
  if (clear_screen) std::cout << "\x1b[H\x1b[2J";
  const double dt_s =
      static_cast<double>(cur.wall_ns - prev.wall_ns) / 1e9;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "das_top  uptime %.1fs  interval %.2fs\n",
                static_cast<double>(cur.wall_ns) / 1e9, dt_s);
  std::cout << buf;

  const std::uint64_t responses = delta(cur, prev, "serve.responses");
  const std::uint64_t requests = delta(cur, prev, "serve.requests");
  const std::uint64_t coalesced = delta(cur, prev, "serve.batch.coalesced");
  const std::uint64_t unions = delta(cur, prev, "serve.batch.union_reads");
  const std::uint64_t hits = delta(cur, prev, "io.cache.hits");
  const std::uint64_t misses = delta(cur, prev, "io.cache.misses");
  const double serve_q = gauge_of(cur, "serve.queue.depth", -1.0);
  const double ingest_q = gauge_of(cur, "ingest.queue.depth", -1.0);
  const double open_spans = gauge_of(cur, "trace.open_spans", 0.0);

  std::snprintf(buf, sizeof buf, "  qps %.1f  queue depth %s%.0f",
                dt_s > 0 ? static_cast<double>(responses) / dt_s : 0.0,
                serve_q >= 0 ? "" : "(ingest) ",
                serve_q >= 0 ? serve_q : ingest_q >= 0 ? ingest_q : 0.0);
  std::cout << buf;
  if (requests > 0) {
    std::snprintf(buf, sizeof buf, "  coalesce %.0f%%  req/union %.1f",
                  100.0 * static_cast<double>(coalesced) /
                      static_cast<double>(requests),
                  unions > 0 ? static_cast<double>(responses) /
                                   static_cast<double>(unions)
                             : 0.0);
    std::cout << buf;
  }
  if (hits + misses > 0) {
    std::snprintf(buf, sizeof buf, "  cache hit %.0f%%",
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(hits + misses));
    std::cout << buf;
  }
  std::cout << "\n";

  std::cout << "  stage                           count      rate"
               "     p50_us     p99_us\n";
  // The serve pipeline's stage order, then everything else that moved
  // (ingest.file_to_detection, span histograms, ...).
  const char* const pipeline[] = {
      serve::lat::kQueueWait, serve::lat::kCoalesce, serve::lat::kDecode,
      serve::lat::kWrite, serve::lat::kRequest};
  for (const char* name : pipeline) {
    const auto it = cur.hists.find(name);
    if (it == cur.hists.end()) continue;
    const auto pit = prev.hists.find(name);
    const HistogramSnapshot d =
        pit == prev.hists.end() ? it->second : it->second.diff(pit->second);
    print_hist_row(name, d, dt_s);
  }
  for (const auto& [name, h] : cur.hists) {
    bool in_pipeline = false;
    for (const char* p : pipeline) in_pipeline |= name == p;
    if (in_pipeline) continue;
    const auto pit = prev.hists.find(name);
    const HistogramSnapshot d =
        pit == prev.hists.end() ? h : h.diff(pit->second);
    if (d.count == 0) continue;
    print_hist_row(name, d, dt_s);
  }

  // Stall heuristic (das_health's zero-progress scan, live): no
  // counter moved this interval -- excluding the telemetry sampler's
  // own tick and the stats.* counters this poll advanced -- while work
  // was nominally in flight.
  std::uint64_t progress = 0;
  for (const auto& [name, value] : cur.counters) {
    if (name == "telemetry.samples") continue;
    if (name.rfind("stats.", 0) == 0) continue;
    const auto it = prev.counters.find(name);
    const std::uint64_t before =
        it == prev.counters.end() ? 0 : it->second;
    progress += value >= before ? value - before : value;
  }
  const double queued = serve_q > 0 ? serve_q : ingest_q > 0 ? ingest_q : 0;
  if (progress == 0 && (open_spans > 0 || queued > 0)) {
    std::snprintf(buf, sizeof buf,
                  "  STALL: no counter progress in %.2fs while %.0f "
                  "span(s) open, %.0f request(s) queued\n",
                  dt_s, open_spans, queued);
    std::cout << buf;
  }
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (!args.has("--socket")) {
    std::cerr << "usage: das_top --socket <path> [--interval-ms MS] "
                 "[--count N] [--once] [--prom]\n"
                 "polls a live das_serve (main socket) or das_ingest "
                 "(--stats-socket) via kStats;\n--once prints one "
                 "snapshot (--prom: Prometheus text exposition)\n";
    return 2;
  }
  try {
    serve::Connection conn = serve::connect_local(args.get("--socket"));
    if (args.has("--once")) {
      const serve::StatsSnapshot s = serve::fetch_stats(conn);
      if (args.has("--prom")) {
        write_prometheus(std::cout, s);
      } else {
        print_frame(s, serve::StatsSnapshot{}, false);
      }
      return 0;
    }
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    const long interval_ms = args.get_long("--interval-ms", 1000);
    const long count = args.get_long("--count", 0);
    const bool tty = ::isatty(STDOUT_FILENO) == 1;
    serve::StatsSnapshot prev = serve::fetch_stats(conn);
    for (long i = 0; (count == 0 || i < count) && !g_stop.load(); ++i) {
      for (long waited = 0; waited < interval_ms && !g_stop.load();
           waited += 50) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<long>(50, interval_ms - waited)));
      }
      if (g_stop.load()) break;
      const serve::StatsSnapshot cur = serve::fetch_stats(conn);
      print_frame(cur, prev, tty);
      prev = cur;
    }
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "top.fail") << e.what();
    return 1;
  }
}
