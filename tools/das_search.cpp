// das_search: find DAS files by time or pattern and optionally merge
// them (paper Section IV-A).
//
// The paper's two query types:
//   Type 1:  das_search --dir data -s 170728224510 -c 2
//   Type 2:  das_search --dir data -e '170728224[567]10'
// Merging the hits:
//   --save-vca merged.vca    virtual concatenation (metadata only) plus
//                            the .tix time-interval sidecar
//   --save-rca merged.dh5    physical concatenation (reads all data)
// Indexed time-range query against a persisted VCA (sub-linear via the
// .tix sidecar, linear fallback with a warning when it is absent):
//   das_search --vca merged.vca --from 170728224510 --to 170728224530
#include <iostream>

#include "arg_parse.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/timer.hpp"
#include "dassa/das/search.hpp"
#include "dassa/io/vca.hpp"

int main(int argc, char** argv) {
  using namespace dassa;
  const tools::Args args(argc, argv);
  const bool vca_query =
      args.has("--vca") && args.has("--from") && args.has("--to");
  if (!vca_query &&
      (!args.has("--dir") || (!args.has("-s") && !args.has("-e")))) {
    std::cerr << "usage: das_search --dir <dir> (-s <yymmddhhmmss> -c <n> | "
                 "-e <regex>) [--save-vca out.vca] [--save-rca out.dh5] "
                 "[--names-only]\n"
                 "       das_search --vca <merged.vca> --from <yymmddhhmmss> "
                 "--to <yymmddhhmmss>\n";
    return 2;
  }
  set_log_level(LogLevel::kInfo);
  try {
    WallTimer timer;
    if (vca_query) {
      const std::vector<das::DasFileInfo> hits =
          das::Catalog::query_vca_interval(
              args.get("--vca"), das::Timestamp::parse(args.get("--from")),
              das::Timestamp::parse(args.get("--to")));
      for (const auto& h : hits) std::cout << h.path << "\n";
      DASSA_SLOG(kInfo, "search.vca_query")
          .field("hits", static_cast<std::uint64_t>(hits.size()))
          .field("seconds", timer.seconds());
      return 0;
    }
    const das::Catalog catalog =
        das::Catalog::scan(args.get("--dir"), !args.has("--names-only"));

    std::vector<das::DasFileInfo> hits;
    if (args.has("-s")) {
      hits = catalog.query_range(
          das::Timestamp::parse(args.get("-s")),
          static_cast<std::size_t>(args.get_long("-c", 1)));
    } else {
      hits = catalog.query_regex(args.get("-e"));
    }
    const double search_seconds = timer.seconds();

    for (const auto& h : hits) std::cout << h.path << "\n";
    DASSA_SLOG(kInfo, "search.done")
            .field("hits", static_cast<std::uint64_t>(hits.size()))
            .field("catalog", static_cast<std::uint64_t>(catalog.size()))
            .field("seconds", search_seconds);
    if (hits.empty()) return (args.has("--save-vca") || args.has("--save-rca"))
                                 ? 1
                                 : 0;

    const std::vector<std::string> paths = das::Catalog::paths(hits);
    if (args.has("--save-vca")) {
      timer.reset();
      // Publishes the .vca plus its .tix time-interval sidecar, so the
      // later --vca query (and das_serve) gets the sub-linear path.
      das::save_vca_with_index(io::Vca::build(paths),
                               args.get("--save-vca"));
      DASSA_SLOG(kInfo, "search.vca")
          .field("path", args.get("--save-vca"))
          .field("seconds", timer.seconds());
    }
    if (args.has("--save-rca")) {
      timer.reset();
      const io::RcaBuildStats stats =
          io::rca_create(paths, args.get("--save-rca"));
      DASSA_SLOG(kInfo, "search.rca")
          .field("path", args.get("--save-rca"))
          .field("seconds", stats.seconds)
          .field("bytes_read", stats.bytes_read);
    }
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "search.fail") << e.what();
    return 1;
  }
}
