// das_generate: render a synthetic DAS acquisition as timestamped
// DASH5 files (the substitute for a real interrogator recording; see
// DESIGN.md). The default scene mirrors paper Fig. 1b: ambient noise,
// two vehicles, one earthquake, one persistent vibration source.
//
// Usage:
//   das_generate --dir data/ [--channels 256] [--rate 500]
//                [--files 6] [--seconds-per-file 60] [--seed 42]
//                [--start 170728224510] [--prefix das] [--f64]
//                [--chunk RxC] [--codec CHAIN] [--quantize LSB]
//                [--stream [--interval-ms N]]
//
// --stream drops the files one at a time, interrogator-style: each is
// rendered into <dir>/.staging/ and renamed into <dir> only when
// complete (an atomic appearance a das_ingest spool watcher can trust),
// optionally sleeping --interval-ms between files to simulate the
// acquisition cadence.
#include <chrono>
#include <filesystem>
#include <iostream>
#include <thread>

#include "arg_parse.hpp"
#include "dassa/common/log.hpp"
#include "dassa/das/synth.hpp"

namespace {

/// Parse "32x1024" into chunk extents.
dassa::io::ChunkShape parse_chunk(const std::string& text) {
  const std::size_t x = text.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= text.size()) {
    throw dassa::InvalidArgument("--chunk expects ROWSxCOLS, got '" + text +
                                 "'");
  }
  dassa::io::ChunkShape chunk;
  chunk.rows = static_cast<std::size_t>(std::stoull(text.substr(0, x)));
  chunk.cols = static_cast<std::size_t>(std::stoull(text.substr(x + 1)));
  return chunk;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dassa;
  const tools::Args args(argc, argv);
  if (!args.has("--dir")) {
    std::cerr << "usage: das_generate --dir <out-dir> [--channels N] "
                 "[--rate HZ] [--files N] [--seconds-per-file S] "
                 "[--seed N] [--start yymmddhhmmss] [--prefix P] [--f64]\n"
                 "[--chunk RxC | --chunk-rows N --chunk-cols N]  (chunked)\n"
                 "[--codec none|shuffle+lz|delta+lz|...]  (DASH5 v3)\n"
                 "[--quantize LSB]  (simulated ADC amplitude step)\n"
                 "[--stream [--interval-ms N]]  (drop files one at a "
                 "time, spool-style)\n";
    return 2;
  }
  set_log_level(LogLevel::kInfo);
  try {
    const auto channels =
        static_cast<std::size_t>(args.get_long("--channels", 256));
    const double rate = args.get_double("--rate", 500.0);
    const auto seed =
        static_cast<std::uint64_t>(args.get_long("--seed", 42));

    const das::SynthDas synth = das::SynthDas::fig1b_scene(channels, rate, seed);

    das::AcquisitionSpec spec;
    spec.dir = args.get("--dir");
    spec.prefix = args.get("--prefix", "das");
    spec.start = das::Timestamp::parse(args.get("--start", "170728224510"));
    spec.file_count = static_cast<std::size_t>(args.get_long("--files", 6));
    spec.seconds_per_file = args.get_double("--seconds-per-file", 60.0);
    spec.dtype = args.has("--f64") ? io::DType::kF64 : io::DType::kF32;
    if (args.has("--chunk")) {
      spec.chunk = parse_chunk(args.get("--chunk"));
    } else if (args.has("--chunk-rows") || args.has("--chunk-cols")) {
      spec.chunk.rows =
          static_cast<std::size_t>(args.get_long("--chunk-rows", 32));
      spec.chunk.cols =
          static_cast<std::size_t>(args.get_long("--chunk-cols", 1024));
    }
    if (args.has("--codec")) {
      spec.codec = io::CodecSpec::parse(args.get("--codec"));
      if (!spec.codec.empty() && spec.chunk.rows == 0) {
        spec.chunk = {32, 1024};  // codec needs tiles; use the defaults
      }
    }
    spec.quantize_lsb = args.get_double("--quantize", 0.0);

    std::vector<std::string> paths;
    if (args.has("--stream")) {
      const long interval_ms = args.get_long("--interval-ms", 0);
      das::AcquisitionSpec staged = spec;
      staged.dir = spec.dir + "/.staging";
      std::filesystem::create_directories(spec.dir);
      for (std::size_t f = 0; f < spec.file_count; ++f) {
        const std::string tmp = das::write_acquisition_file(synth, staged, f);
        const std::string dest =
            spec.dir + "/" +
            std::filesystem::path(tmp).filename().string();
        std::filesystem::rename(tmp, dest);
        paths.push_back(dest);
        std::cout << dest << "\n" << std::flush;
        if (interval_ms > 0 && f + 1 < spec.file_count) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(interval_ms));
        }
      }
      std::error_code ec;
      std::filesystem::remove(staged.dir, ec);  // best-effort tidy-up
    } else {
      paths = das::write_acquisition(synth, spec);
      for (const auto& p : paths) std::cout << p << "\n";
    }
    DASSA_SLOG(kInfo, "generate.done")
            .field("files", static_cast<std::uint64_t>(paths.size()))
            .field("channels", static_cast<std::uint64_t>(channels))
        << spec.seconds_per_file * rate << " samples per file";
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "generate.fail") << e.what();
    return 1;
  }
}
