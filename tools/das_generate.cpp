// das_generate: render a synthetic DAS acquisition as timestamped
// DASH5 files (the substitute for a real interrogator recording; see
// DESIGN.md). The default scene mirrors paper Fig. 1b: ambient noise,
// two vehicles, one earthquake, one persistent vibration source.
//
// Usage:
//   das_generate --dir data/ [--channels 256] [--rate 500]
//                [--files 6] [--seconds-per-file 60] [--seed 42]
//                [--start 170728224510] [--prefix das] [--f64]
#include <iostream>

#include "arg_parse.hpp"
#include "dassa/das/synth.hpp"

int main(int argc, char** argv) {
  using namespace dassa;
  const tools::Args args(argc, argv);
  if (!args.has("--dir")) {
    std::cerr << "usage: das_generate --dir <out-dir> [--channels N] "
                 "[--rate HZ] [--files N] [--seconds-per-file S] "
                 "[--seed N] [--start yymmddhhmmss] [--prefix P] [--f64]\n"
                 "[--chunk-rows N --chunk-cols N]  (chunked layout)\n";
    return 2;
  }
  try {
    const auto channels =
        static_cast<std::size_t>(args.get_long("--channels", 256));
    const double rate = args.get_double("--rate", 500.0);
    const auto seed =
        static_cast<std::uint64_t>(args.get_long("--seed", 42));

    const das::SynthDas synth = das::SynthDas::fig1b_scene(channels, rate, seed);

    das::AcquisitionSpec spec;
    spec.dir = args.get("--dir");
    spec.prefix = args.get("--prefix", "das");
    spec.start = das::Timestamp::parse(args.get("--start", "170728224510"));
    spec.file_count = static_cast<std::size_t>(args.get_long("--files", 6));
    spec.seconds_per_file = args.get_double("--seconds-per-file", 60.0);
    spec.dtype = args.has("--f64") ? io::DType::kF64 : io::DType::kF32;
    if (args.has("--chunk-rows") || args.has("--chunk-cols")) {
      spec.chunk.rows =
          static_cast<std::size_t>(args.get_long("--chunk-rows", 32));
      spec.chunk.cols =
          static_cast<std::size_t>(args.get_long("--chunk-cols", 1024));
    }

    const std::vector<std::string> paths = das::write_acquisition(synth, spec);
    for (const auto& p : paths) std::cout << p << "\n";
    std::cerr << "wrote " << paths.size() << " files (" << channels
              << " channels x " << spec.seconds_per_file * rate
              << " samples each)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "das_generate: " << e.what() << "\n";
    return 1;
  }
}
