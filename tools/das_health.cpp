// das_health: validate a DASSA telemetry JSONL file and print the
// pipeline health report.
//
// Usage:
//   das_health <run.telemetry.jsonl> [--validate-only]
//
// The file is produced by `das_analyze --telemetry out.jsonl` (or any
// caller of telemetry::write_telemetry_file). The schema validator
// runs first -- a file whose aggregates disagree with its per-rank
// records, whose counters go backwards, or whose histogram buckets do
// not sum to their counts fails with exit code 1 and a description of
// the first violation.
#include <fstream>
#include <iostream>
#include <sstream>

#include "arg_parse.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace dassa;
  const tools::Args args(argc, argv);
  if (args.positional().size() != 1) {
    std::cerr << "usage: das_health <run.telemetry.jsonl> "
                 "[--validate-only]\n";
    return 2;
  }
  const std::string& path = args.positional().front();
  try {
    std::ifstream in(path);
    if (!in.good()) throw IoError("cannot open telemetry file: " + path);
    std::ostringstream text;
    text << in.rdbuf();

    const telemetry::TelemetryFile file =
        telemetry::parse_telemetry_jsonl(text.str());
    telemetry::validate_telemetry_file(file);
    if (args.has("--validate-only")) {
      std::cout << path << ": valid (" << file.samples.size()
                << " samples, " << file.ranks.size() << " ranks)\n";
      return 0;
    }
    telemetry::write_health_report(std::cout, file);
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "health.fail").field("file", path) << e.what();
    return 1;
  }
}
