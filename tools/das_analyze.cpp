// das_analyze: run a DASSA analysis pipeline over an acquisition
// directory from the command line -- the end-to-end workflow a
// geophysicist runs (search -> VCA -> HAEE -> output file).
//
// Usage:
//   das_analyze --dir data --pipeline similarity
//               [-s yymmddhhmmss -c N | -e regex]   (default: all files)
//               [--nodes 4] [--cores 2] [--mpi-per-core]
//               [--out result.dh5]
//   pipeline "similarity":  paper Algorithm 2 (local similarity)
//     [--window-half M] [--lag-half L] [--channel-offset K]
//   pipeline "interferometry": paper Algorithm 3
//     [--band-lo HZ] [--band-hi HZ] [--resample-down R]
//     [--master CH] [--full-correlation]
//   pipeline "qc": channel quality control
//     [--dead-fraction F] [--noisy-multiple M]
//   any pipeline:
//     [--trace out.json]  enable span tracing, export chrome://tracing
//                         JSON to out.json and a per-span summary to
//                         stderr (inspect with das_trace)
#include <fstream>
#include <iostream>

#include "arg_parse.hpp"
#include "dassa/common/counters.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/das/channel_qc.hpp"
#include "dassa/das/interferometry.hpp"
#include "dassa/das/local_similarity.hpp"
#include "dassa/das/search.hpp"
#include "dassa/dsp/stats.hpp"

namespace {

using namespace dassa;

/// Pull the DSP cache statistics into the global registry and print
/// them: a cold plan cache or runaway allocation shows up here long
/// before it shows up in wall time.
void print_dsp_counters() {
  dsp::publish_dsp_counters();
  std::cerr << "dsp counters:\n";
  for (const auto& [name, value] : global_counters().snapshot()) {
    if (name.rfind("dsp.", 0) == 0) {
      std::cerr << "  " << name << " = " << value << "\n";
    }
  }
}

/// Storage-engine statistics: codec throughput and chunk cache
/// effectiveness (DASH5 v3 inputs only; all zeros for v2 files).
void print_storage_counters() {
  std::cerr << "storage counters:\n";
  for (const auto& [name, value] : global_counters().snapshot()) {
    if (name.rfind("io.codec.", 0) == 0 || name.rfind("io.cache.", 0) == 0) {
      std::cerr << "  " << name << " = " << value << "\n";
    }
  }
}

/// Export the recorded spans as chrome://tracing JSON plus a per-span
/// summary and the unified metrics report on stderr. No-op unless
/// --trace was given.
void maybe_export_trace(const tools::Args& args) {
  if (!args.has("--trace")) return;
  const std::string path = args.get("--trace");
  trace::publish_trace_counters();
  const std::vector<trace::TraceEvent> events = trace::collect();
  std::ofstream out(path);
  DASSA_CHECK(out.good(), "cannot open trace output file: " + path);
  trace::write_chrome_trace(out, events);
  std::cerr << "trace: " << events.size() << " spans -> " << path << "\n";
  trace::write_summary(std::cerr, events);
  global_metrics().write_report(std::cerr);
}

std::vector<std::string> find_files(const tools::Args& args) {
  const das::Catalog catalog = das::Catalog::scan(args.get("--dir"));
  std::vector<das::DasFileInfo> hits;
  if (args.has("-s")) {
    hits = catalog.query_range(
        das::Timestamp::parse(args.get("-s")),
        static_cast<std::size_t>(args.get_long("-c", 1)));
  } else if (args.has("-e")) {
    hits = catalog.query_regex(args.get("-e"));
  } else {
    hits = catalog.entries();
  }
  return das::Catalog::paths(hits);
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (!args.has("--dir") || !args.has("--pipeline")) {
    std::cerr << "usage: das_analyze --dir <dir> --pipeline "
                 "<similarity|interferometry> [options]\n"
                 "run with the header comment of tools/das_analyze.cpp "
                 "for the full option list\n";
    return 2;
  }
  try {
    if (args.has("--trace")) trace::set_enabled(true);
    const std::vector<std::string> files = find_files(args);
    if (files.empty()) {
      std::cerr << "das_analyze: no matching files\n";
      return 1;
    }
    io::Vca vca = io::Vca::build(files);
    std::cerr << "input: " << vca.shape() << " from " << files.size()
              << " files\n";

    core::EngineConfig config;
    config.nodes = static_cast<int>(args.get_long("--nodes", 2));
    config.cores_per_node = static_cast<int>(args.get_long("--cores", 2));
    config.mode = args.has("--mpi-per-core")
                      ? core::EngineMode::kMpiPerCore
                      : core::EngineMode::kHybrid;

    core::EngineReport report;
    const std::string pipeline = args.get("--pipeline");
    if (pipeline == "similarity") {
      das::LocalSimilarityParams p;
      p.window_half =
          static_cast<std::size_t>(args.get_long("--window-half", 25));
      p.lag_half = static_cast<std::size_t>(args.get_long("--lag-half", 10));
      p.channel_offset =
          static_cast<std::size_t>(args.get_long("--channel-offset", 1));
      report = das::local_similarity_distributed(config, vca, p);
    } else if (pipeline == "interferometry") {
      das::InterferometryParams p;
      p.sampling_hz =
          vca.global_meta().get_f64(io::meta::kSamplingFrequencyHz);
      p.band_lo_hz = args.get_double("--band-lo", 1.0);
      p.band_hi_hz =
          args.get_double("--band-hi", 0.45 * p.sampling_hz);
      p.resample_down =
          static_cast<std::size_t>(args.get_long("--resample-down", 2));
      p.master_channel = static_cast<std::size_t>(
          args.get_long("--master",
                        static_cast<long>(vca.shape().rows / 2)));
      p.full_correlation = args.has("--full-correlation");
      report = das::interferometry_distributed(config, vca, p);
    } else if (pipeline == "qc") {
      das::ChannelQcParams p;
      p.dead_rms_fraction = args.get_double("--dead-fraction", 0.1);
      p.noisy_rms_multiple = args.get_double("--noisy-multiple", 5.0);
      const das::ChannelQcReport qc = das::channel_qc(config, vca, p);
      std::cout << "channel,rms,peak,kurtosis,status\n";
      for (std::size_t ch = 0; ch < qc.channels.size(); ++ch) {
        const das::ChannelStats& c = qc.channels[ch];
        std::cout << ch << "," << c.rms << "," << c.peak << ","
                  << c.kurtosis << ","
                  << das::channel_status_name(c.status) << "\n";
      }
      std::cerr << "median rms " << qc.median_rms << "; "
                << qc.count(das::ChannelStatus::kDead) << " dead, "
                << qc.count(das::ChannelStatus::kNoisy) << " noisy of "
                << qc.channels.size() << " channels\n";
      print_dsp_counters();
      print_storage_counters();
      maybe_export_trace(args);
      return 0;
    } else {
      std::cerr << "das_analyze: unknown pipeline '" << pipeline << "'\n";
      return 2;
    }

    std::cerr << "output: " << report.output.shape << ", stages: "
              << report.stages << "\n";
    print_dsp_counters();
    print_storage_counters();
    const std::string out_path = args.get("--out", "das_analyze_out.dh5");
    io::Dash5Header header;
    header.shape = report.output.shape;
    header.global = vca.global_meta();
    io::dash5_write(out_path, header, report.output.data);
    std::cerr << "wrote " << out_path << "\n";
    maybe_export_trace(args);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "das_analyze: " << e.what() << "\n";
    return 1;
  }
}
