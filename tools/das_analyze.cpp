// das_analyze: run a DASSA analysis pipeline over an acquisition
// directory from the command line -- the end-to-end workflow a
// geophysicist runs (search -> VCA -> HAEE -> output file).
//
// Usage:
//   das_analyze --dir data --pipeline similarity --out result.dh5
//               [-s yymmddhhmmss -c N | -e regex]   (default: all files)
//               [--nodes 4] [--cores 2] [--mpi-per-core]
//
// --out (or -o) is required for the pipelines that produce an output
// array (similarity, interferometry): the tool never silently drops
// artifacts into the current working directory.
//   pipeline "similarity":  paper Algorithm 2 (local similarity)
//     [--window-half M] [--lag-half L] [--channel-offset K]
//   pipeline "interferometry": paper Algorithm 3
//     [--band-lo HZ] [--band-hi HZ] [--resample-down R]
//     [--master CH] [--full-correlation]
//   pipeline "qc": channel quality control
//     [--dead-fraction F] [--noisy-multiple M]
//   any pipeline:
//     [--trace out.json]      enable span tracing, export chrome://tracing
//                             JSON to out.json (inspect with das_trace)
//     [--telemetry out.jsonl] sample counters/resources during the run,
//                             write the "dassa.telemetry.v1" timeline with
//                             per-rank aggregates, and print the health
//                             report to stdout (inspect with das_health)
//     [--log-json path]       mirror log records to a JSONL file
//     [--log-level L]         debug|info|warn|error (default info)
#include <fstream>
#include <iostream>
#include <sstream>

#include "arg_parse.hpp"
#include "dassa/common/counters.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/telemetry.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/das/channel_qc.hpp"
#include "dassa/das/interferometry.hpp"
#include "dassa/das/local_similarity.hpp"
#include "dassa/das/search.hpp"
#include "dassa/dsp/stats.hpp"

namespace {

using namespace dassa;

/// One structured record per counter namespace: a cold plan cache or
/// runaway allocation shows up here long before it shows up in wall
/// time.
void log_counters(const char* event, const char* prefix1,
                  const char* prefix2) {
  std::string line;
  for (const auto& [name, value] : global_counters().snapshot()) {
    if (name.rfind(prefix1, 0) == 0 ||
        (prefix2 != nullptr && name.rfind(prefix2, 0) == 0)) {
      line += ' ';
      line += name;
      line += '=';
      line += std::to_string(value);
    }
  }
  if (!line.empty()) {
    DASSA_SLOG(kInfo, event) << line;
  }
}

/// Export the recorded spans as chrome://tracing JSON plus a per-span
/// summary and the unified metrics report. No-op unless --trace given.
void maybe_export_trace(const tools::Args& args) {
  if (!args.has("--trace")) return;
  const std::string path = args.get("--trace");
  trace::publish_trace_counters();
  const std::vector<trace::TraceEvent> events = trace::collect();
  std::ofstream out(path);
  DASSA_CHECK(out.good(), "cannot open trace output file: " + path);
  trace::write_chrome_trace(out, events);
  std::ostringstream summary;
  trace::write_summary(summary, events);
  global_metrics().write_report(summary);
  DASSA_SLOG(kInfo, "analyze.trace")
          .field("spans", static_cast<std::uint64_t>(events.size()))
          .field("path", path)
      << "\n"
      << summary.str();
}

/// Assemble the telemetry file from the sampler timeline and the
/// engine's cross-rank reduction, write it, then re-parse and validate
/// the bytes on disk -- the health report only prints if the file
/// round-trips through the schema checker.
void export_telemetry(const std::string& path, const tools::Args& args,
                      const core::EngineReport& report,
                      const telemetry::TelemetrySampler& sampler) {
  telemetry::TelemetryFile file;
  file.meta["tool"] = "das_analyze";
  file.meta["pipeline"] = args.get("--pipeline");
  file.meta["world_size"] = std::to_string(report.world_size);
  file.meta["threads_per_rank"] = std::to_string(report.threads_per_rank);
  file.samples = sampler.timeline();

  const auto cluster_sum = [&report](const char* name) {
    const auto it = report.telemetry.counters.find(name);
    return it == report.telemetry.counters.end() ? std::uint64_t{0}
                                                 : it->second.sum;
  };
  for (const auto& [name, secs] : report.stages.stages()) {
    telemetry::StageRecord st;
    st.name = name;
    st.seconds = secs;
    if (name == "read") {
      st.bytes = cluster_sum("haee.read_bytes");
      st.rows = cluster_sum("haee.rows_owned");
    } else if (name == "compute") {
      st.rows = cluster_sum("haee.rows_owned");
    } else if (name == "write") {
      st.bytes = cluster_sum("haee.output_values") * sizeof(double);
      st.rows = cluster_sum("haee.rows_owned");
    }
    file.stages.push_back(std::move(st));
  }

  for (const mpi::RankTelemetry& rt : report.telemetry.per_rank) {
    telemetry::RankRecord rec;
    rec.rank = static_cast<int>(file.ranks.size());
    rec.counters = rt.counters;
    file.ranks.push_back(std::move(rec));
  }
  for (const auto& [name, agg] : report.telemetry.counters) {
    telemetry::AggRecord a;
    a.counter = name;
    a.sum = agg.sum;
    a.min = agg.min;
    a.max = agg.max;
    a.min_rank = agg.min_rank;
    a.max_rank = agg.max_rank;
    a.imbalance = agg.imbalance(report.world_size);
    file.aggs.push_back(std::move(a));
  }
  for (const auto& [name, h] : report.telemetry.hists) {
    telemetry::HistRecord rec;
    rec.name = name;
    rec.count = h.count;
    rec.total_ns = h.total_ns;
    rec.p50_ns = h.quantile_ns(0.50);
    rec.p95_ns = h.quantile_ns(0.95);
    rec.p99_ns = h.quantile_ns(0.99);
    rec.buckets = h.buckets;
    file.hists.push_back(std::move(rec));
  }

  {
    std::ofstream out(path);
    DASSA_CHECK(out.good(), "cannot open telemetry output file: " + path);
    telemetry::write_telemetry_file(out, file);
  }
  std::ifstream back(path);
  std::ostringstream text;
  text << back.rdbuf();
  const telemetry::TelemetryFile parsed =
      telemetry::parse_telemetry_jsonl(text.str());
  telemetry::validate_telemetry_file(parsed);
  DASSA_SLOG(kInfo, "analyze.telemetry")
      .field("path", path)
      .field("samples", static_cast<std::uint64_t>(parsed.samples.size()))
      .field("ranks", static_cast<std::uint64_t>(parsed.ranks.size()))
      .field("dropped", sampler.dropped());
  telemetry::write_health_report(std::cout, parsed);
}

std::vector<std::string> find_files(const tools::Args& args) {
  const das::Catalog catalog = das::Catalog::scan(args.get("--dir"));
  std::vector<das::DasFileInfo> hits;
  if (args.has("-s")) {
    hits = catalog.query_range(
        das::Timestamp::parse(args.get("-s")),
        static_cast<std::size_t>(args.get_long("-c", 1)));
  } else if (args.has("-e")) {
    hits = catalog.query_regex(args.get("-e"));
  } else {
    hits = catalog.entries();
  }
  return das::Catalog::paths(hits);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  throw InvalidArgument("unknown log level: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (!args.has("--dir") || !args.has("--pipeline")) {
    std::cerr << "usage: das_analyze --dir <dir> --pipeline "
                 "<similarity|interferometry|qc> [--out result.dh5] "
                 "[options]\n"
                 "--out/-o is required unless the pipeline is qc\n"
                 "see the header comment of tools/das_analyze.cpp "
                 "for the full option list\n";
    return 2;
  }
  try {
    set_log_level(parse_log_level(args.get("--log-level", "info")));
    if (args.has("--log-json")) set_log_file(args.get("--log-json"));
    if (args.has("--trace")) trace::set_enabled(true);

    telemetry::SamplerConfig sampler_config;
    sampler_config.period = std::chrono::milliseconds(
        args.get_long("--telemetry-period-ms", 25));
    telemetry::TelemetrySampler sampler(sampler_config);
    if (args.has("--telemetry")) {
      trace::set_enabled(true);  // stall detection needs open spans
      sampler.start();
    }

    const std::vector<std::string> files = find_files(args);
    if (files.empty()) {
      DASSA_SLOG(kError, "analyze.no_files")
          .field("dir", args.get("--dir"));
      return 1;
    }
    io::Vca vca = io::Vca::build(files);
    DASSA_SLOG(kInfo, "analyze.input")
            .field("files", static_cast<std::uint64_t>(files.size()))
        << vca.shape();

    core::EngineConfig config;
    config.nodes = static_cast<int>(args.get_long("--nodes", 2));
    config.cores_per_node = static_cast<int>(args.get_long("--cores", 2));
    config.mode = args.has("--mpi-per-core")
                      ? core::EngineMode::kMpiPerCore
                      : core::EngineMode::kHybrid;

    core::EngineReport report;
    const std::string pipeline = args.get("--pipeline");
    // Array-producing pipelines must name their destination: writing a
    // default file into whatever directory the tool happens to run
    // from litters CWDs (and CI checkouts) with artifacts.
    if (pipeline != "qc" && !args.has("--out") && !args.has("-o")) {
      DASSA_SLOG(kError, "analyze.no_out")
          << "--out/-o is required for pipeline '" << pipeline
          << "' (it writes a result array); pass --out result.dh5";
      return 2;
    }
    if (pipeline == "similarity") {
      das::LocalSimilarityParams p;
      p.window_half =
          static_cast<std::size_t>(args.get_long("--window-half", 25));
      p.lag_half = static_cast<std::size_t>(args.get_long("--lag-half", 10));
      p.channel_offset =
          static_cast<std::size_t>(args.get_long("--channel-offset", 1));
      report = das::local_similarity_distributed(config, vca, p);
    } else if (pipeline == "interferometry") {
      das::InterferometryParams p;
      p.sampling_hz =
          vca.global_meta().get_f64(io::meta::kSamplingFrequencyHz);
      p.band_lo_hz = args.get_double("--band-lo", 1.0);
      p.band_hi_hz =
          args.get_double("--band-hi", 0.45 * p.sampling_hz);
      p.resample_down =
          static_cast<std::size_t>(args.get_long("--resample-down", 2));
      p.master_channel = static_cast<std::size_t>(
          args.get_long("--master",
                        static_cast<long>(vca.shape().rows / 2)));
      p.full_correlation = args.has("--full-correlation");
      report = das::interferometry_distributed(config, vca, p);
    } else if (pipeline == "qc") {
      das::ChannelQcParams p;
      p.dead_rms_fraction = args.get_double("--dead-fraction", 0.1);
      p.noisy_rms_multiple = args.get_double("--noisy-multiple", 5.0);
      const das::ChannelQcReport qc = das::channel_qc(config, vca, p);
      std::cout << "channel,rms,peak,kurtosis,status\n";
      for (std::size_t ch = 0; ch < qc.channels.size(); ++ch) {
        const das::ChannelStats& c = qc.channels[ch];
        std::cout << ch << "," << c.rms << "," << c.peak << ","
                  << c.kurtosis << ","
                  << das::channel_status_name(c.status) << "\n";
      }
      DASSA_SLOG(kInfo, "analyze.qc")
          .field("channels", static_cast<std::uint64_t>(qc.channels.size()))
          .field("dead", static_cast<std::uint64_t>(
                             qc.count(das::ChannelStatus::kDead)))
          .field("noisy", static_cast<std::uint64_t>(
                              qc.count(das::ChannelStatus::kNoisy)))
          .field("median_rms", qc.median_rms);
      dsp::publish_dsp_counters();
      log_counters("analyze.dsp_counters", "dsp.", nullptr);
      log_counters("analyze.storage_counters", "io.codec.", "io.cache.");
      maybe_export_trace(args);
      if (args.has("--telemetry")) {
        sampler.stop();
        DASSA_SLOG(kWarn, "analyze.telemetry")
            << "--telemetry needs a distributed pipeline "
               "(similarity|interferometry); qc has no rank telemetry";
      }
      return 0;
    } else {
      DASSA_SLOG(kError, "analyze.bad_pipeline").field("pipeline", pipeline);
      return 2;
    }

    std::ostringstream stages;
    stages << report.output.shape << "; " << report.stages;
    DASSA_SLOG(kInfo, "analyze.done")
            .field("world_size", report.world_size)
        << stages.str();
    dsp::publish_dsp_counters();
    log_counters("analyze.dsp_counters", "dsp.", nullptr);
    log_counters("analyze.storage_counters", "io.codec.", "io.cache.");
    const std::string out_path =
        args.has("--out") ? args.get("--out") : args.get("-o");
    io::Dash5Header header;
    header.shape = report.output.shape;
    header.global = vca.global_meta();
    io::dash5_write(out_path, header, report.output.data);
    DASSA_SLOG(kInfo, "analyze.output").field("path", out_path);
    maybe_export_trace(args);
    if (args.has("--telemetry")) {
      sampler.stop();
      sampler.tick();  // final sample: the completed run's totals
      export_telemetry(args.get("--telemetry"), args, report, sampler);
    }
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "analyze.fail") << e.what();
    return 1;
  }
}
