// das_repack: rewrite a DASH5 file into a chosen layout and codec —
// the v2 <-> v3 migration path. Metadata (global KV + channel objects)
// and sample values are preserved exactly; only the storage
// arrangement changes. Runs in bounded memory by streaming row blocks
// through Dash5StreamWriter.
//
// Usage:
//   das_repack <in.dh5> <out.dh5>
//              [--codec none|shuffle+lz|delta+lz|...]  (default none)
//              [--chunk RxC]      (default: input chunking, else 32x1024)
//              [--contiguous]     (plain v2 contiguous output)
//              [--rows-per-block N]
//              [--verify]         (re-read both files, compare bit-exact)
#include <cstring>
#include <filesystem>
#include <iostream>

#include "arg_parse.hpp"
#include "dassa/common/log.hpp"
#include "dassa/io/dash5.hpp"

namespace {

using namespace dassa;

io::ChunkShape parse_chunk(const std::string& text) {
  const std::size_t x = text.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= text.size()) {
    throw InvalidArgument("--chunk expects ROWSxCOLS, got '" + text + "'");
  }
  io::ChunkShape chunk;
  chunk.rows = static_cast<std::size_t>(std::stoull(text.substr(0, x)));
  chunk.cols = static_cast<std::size_t>(std::stoull(text.substr(x + 1)));
  return chunk;
}

/// Block-by-block bit-exact comparison of two files' datasets. Both
/// sides decode to double through the same element pipeline, so equal
/// storage means equal bit patterns.
bool datasets_match(const io::Dash5File& a, const io::Dash5File& b,
                    std::size_t rows_per_block) {
  if (!(a.shape() == b.shape())) return false;
  const Shape2D shape = a.shape();
  for (std::size_t r0 = 0; r0 < shape.rows; r0 += rows_per_block) {
    const std::size_t cnt = std::min(rows_per_block, shape.rows - r0);
    const Slab2D slab{r0, 0, cnt, shape.cols};
    const std::vector<double> lhs = a.read_slab(slab);
    const std::vector<double> rhs = b.read_slab(slab);
    if (std::memcmp(lhs.data(), rhs.data(), lhs.size() * sizeof(double)) !=
        0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (args.positional().size() != 2) {
    std::cerr << "usage: das_repack <in.dh5> <out.dh5> [--codec CHAIN] "
                 "[--chunk RxC] [--contiguous] [--rows-per-block N] "
                 "[--verify]\n";
    return 2;
  }
  const std::string in_path = args.positional()[0];
  const std::string out_path = args.positional()[1];
  dassa::set_log_level(dassa::LogLevel::kInfo);
  try {
    const io::Dash5File in(in_path);
    const auto rows_per_block = static_cast<std::size_t>(
        args.get_long("--rows-per-block", 64));
    DASSA_CHECK(rows_per_block >= 1, "--rows-per-block must be >= 1");

    io::Dash5Header header = io::Dash5File::read_header(in_path);
    header.codec = io::CodecSpec::parse(args.get("--codec", "none"));
    if (args.has("--contiguous")) {
      DASSA_CHECK(header.codec.empty(),
                  "--contiguous cannot carry a codec chain");
      header.layout = io::Layout::kContiguous;
      header.chunk = {0, 0};
    } else if (args.has("--chunk")) {
      header.layout = io::Layout::kChunked;
      header.chunk = parse_chunk(args.get("--chunk"));
    } else if (!header.codec.empty() &&
               header.layout != io::Layout::kChunked) {
      header.layout = io::Layout::kChunked;
      header.chunk = {32, 1024};
    }
    // The stream writer takes contiguous (no codec) or chunked+codec;
    // a plain chunked v2 rewrite goes through the one-shot writer.
    const bool streamed =
        header.codec.empty() ? header.layout == io::Layout::kContiguous
                             : true;
    if (streamed) {
      io::Dash5StreamWriter out(out_path, header);
      const Shape2D shape = in.shape();
      for (std::size_t r0 = 0; r0 < shape.rows; r0 += rows_per_block) {
        const std::size_t cnt = std::min(rows_per_block, shape.rows - r0);
        out.append(in.read_slab({r0, 0, cnt, shape.cols}));
      }
      out.close();
    } else {
      io::dash5_write(out_path, header, in.read_all());
    }

    const auto in_bytes = std::filesystem::file_size(in_path);
    const auto out_bytes = std::filesystem::file_size(out_path);
    DASSA_SLOG(kInfo, "repack.done")
            .field("in", in_path)
            .field("in_version", int{in.version()})
            .field("in_bytes", static_cast<std::uint64_t>(in_bytes))
            .field("out", out_path)
            .field("codec", header.codec.str())
            .field("out_bytes", static_cast<std::uint64_t>(out_bytes))
        << static_cast<double>(in_bytes) / static_cast<double>(out_bytes)
        << "x";

    if (args.has("--verify")) {
      const io::Dash5File check(out_path);
      if (!datasets_match(in, check, rows_per_block)) {
        DASSA_SLOG(kError, "repack.verify_failed")
            .field("out", out_path)
            .field("in", in_path);
        return 1;
      }
      DASSA_SLOG(kInfo, "repack.verify") << "bit-exact roundtrip ok";
    }
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "repack.fail") << e.what();
    return 1;
  }
}
