// das_repack: rewrite DASH5 files into a chosen layout and codec —
// the v2 <-> v3 migration path. Metadata (global KV + channel objects)
// and sample values are preserved exactly; only the storage
// arrangement changes.
//
// With one input the file is rewritten in bounded memory by streaming
// row blocks through Dash5StreamWriter. With several inputs (time
// order) the tool is a concatenator: it builds one merged file, and
// `--ranks N` distributes the job over N MiniMPI ranks via the
// parallel repack engine — each rank encodes ~1/p of the chunks into
// its own disjoint extent, byte-identical to a serial build. The
// parallel path needs a codec chain (it writes v3); without one the
// concatenation falls back to the serial streaming RCA builder.
//
// Usage:
//   das_repack <in.dh5> [<in2.dh5> ...] <out.dh5>
//              [--codec none|shuffle+lz|delta+lz|...]  (default none)
//              [--chunk RxC]      (default: input chunking, else 32x1024)
//              [--contiguous]     (plain v2 contiguous output)
//              [--rows-per-block N]
//              [--ranks N]        (parallel concatenation world size)
//              [--verify]         (re-read both sides, compare bit-exact)
//              [--telemetry out.jsonl] [--telemetry-period-ms N]
//                                 (concat mode: sample the run, write a
//                                  validated dassa.telemetry.v1 file)
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "arg_parse.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/telemetry.hpp"
#include "dassa/das/search.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/io/repack.hpp"
#include "dassa/io/vca.hpp"

namespace {

using namespace dassa;

io::ChunkShape parse_chunk(const std::string& text) {
  const std::size_t x = text.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= text.size()) {
    throw InvalidArgument("--chunk expects ROWSxCOLS, got '" + text + "'");
  }
  io::ChunkShape chunk;
  chunk.rows = static_cast<std::size_t>(std::stoull(text.substr(0, x)));
  chunk.cols = static_cast<std::size_t>(std::stoull(text.substr(x + 1)));
  return chunk;
}

/// Block-by-block bit-exact comparison of two datasets (Dash5File or
/// Vca — anything with shape() and read_slab()). Both sides decode to
/// double through the same element pipeline, so equal storage means
/// equal bit patterns.
template <typename SourceA, typename SourceB>
bool datasets_match(const SourceA& a, const SourceB& b,
                    std::size_t rows_per_block) {
  if (!(a.shape() == b.shape())) return false;
  const Shape2D shape = a.shape();
  for (std::size_t r0 = 0; r0 < shape.rows; r0 += rows_per_block) {
    const std::size_t cnt = std::min(rows_per_block, shape.rows - r0);
    const Slab2D slab{r0, 0, cnt, shape.cols};
    const std::vector<double> lhs = a.read_slab(slab);
    const std::vector<double> rhs = b.read_slab(slab);
    if (std::memcmp(lhs.data(), rhs.data(), lhs.size() * sizeof(double)) !=
        0) {
      return false;
    }
  }
  return true;
}

/// Write the concat run as a "dassa.telemetry.v1" file: the sampler
/// timeline plus, for the parallel engine, per-rank repack counters and
/// their cluster aggregates. Re-parsed and schema-validated before the
/// success log, exactly like `das_analyze --telemetry`.
void export_telemetry(const std::string& path, std::size_t n_inputs,
                      const io::RepackReport* report,
                      const telemetry::TelemetrySampler& sampler) {
  telemetry::TelemetryFile file;
  file.meta["tool"] = "das_repack";
  file.meta["inputs"] = std::to_string(n_inputs);
  file.samples = sampler.timeline();
  if (report != nullptr) {
    const std::size_t p = report->rank_source_bytes.size();
    file.meta["world_size"] = std::to_string(p);
    std::uint64_t source_bytes = 0;
    for (const std::uint64_t b : report->rank_source_bytes) {
      source_bytes += b;
    }
    telemetry::StageRecord st;
    st.name = "repack";
    st.seconds = report->seconds;
    st.bytes = source_bytes;
    st.rows = report->shape.rows;
    file.stages.push_back(std::move(st));

    const std::pair<const char*, const std::vector<std::uint64_t>&>
        per_rank[] = {{"io.repack.source_bytes", report->rank_source_bytes},
                      {"io.repack.chunks_encoded", report->rank_chunks}};
    for (std::size_t r = 0; r < p; ++r) {
      telemetry::RankRecord rec;
      rec.rank = static_cast<int>(r);
      for (const auto& [name, values] : per_rank) {
        rec.counters[name] = values[r];
      }
      file.ranks.push_back(std::move(rec));
    }
    for (const auto& [name, values] : per_rank) {
      telemetry::AggRecord a;
      a.counter = name;
      a.min = values[0];
      a.max = values[0];
      for (std::size_t r = 0; r < p; ++r) {
        a.sum += values[r];
        if (values[r] < a.min) { a.min = values[r]; a.min_rank = static_cast<int>(r); }
        if (values[r] > a.max) { a.max = values[r]; a.max_rank = static_cast<int>(r); }
      }
      const double mean = static_cast<double>(a.sum) / static_cast<double>(p);
      a.imbalance = mean > 0.0 ? static_cast<double>(a.max) / mean : 1.0;
      file.aggs.push_back(std::move(a));
    }
  }
  {
    std::ofstream out(path);
    DASSA_CHECK(out.good(), "cannot open telemetry output file: " + path);
    telemetry::write_telemetry_file(out, file);
  }
  std::ifstream back(path);
  std::ostringstream text;
  text << back.rdbuf();
  telemetry::validate_telemetry_file(
      telemetry::parse_telemetry_jsonl(text.str()));
  DASSA_SLOG(kInfo, "repack.telemetry")
          .field("path", path)
          .field("samples", static_cast<std::uint64_t>(file.samples.size()))
      << "validated";
}

/// Multi-input mode: concatenate `inputs` into one merged file —
/// parallel v3 build when a codec chain is given, serial streaming RCA
/// otherwise.
int run_concat(const tools::Args& args,
               const std::vector<std::string>& inputs,
               const std::string& out_path) {
  const auto rows_per_block =
      static_cast<std::size_t>(args.get_long("--rows-per-block", 64));
  DASSA_CHECK(rows_per_block >= 1, "--rows-per-block must be >= 1");
  DASSA_CHECK(!args.has("--contiguous"),
              "--contiguous applies to single-input rewrites only");
  const auto ranks = static_cast<int>(args.get_long("--ranks", 1));
  DASSA_CHECK(ranks >= 1, "--ranks must be >= 1");
  const io::CodecSpec codec =
      io::CodecSpec::parse(args.get("--codec", "none"));

  telemetry::TelemetrySampler sampler{telemetry::SamplerConfig{
      .period = std::chrono::milliseconds(
          args.get_long("--telemetry-period-ms", 50))}};
  const bool want_telemetry = args.has("--telemetry");
  if (want_telemetry) sampler.start();
  const io::RepackReport* report_ptr = nullptr;
  io::RepackReport report;

  if (codec.empty()) {
    // No codec chain: the parallel engine has nothing to build (it
    // writes v3), so concatenate through the serial streaming RCA.
    DASSA_CHECK(ranks == 1,
                "--ranks needs a codec chain (parallel output is v3); "
                "drop --ranks or add --codec");
    const io::RcaBuildStats stats =
        io::rca_create_streaming(inputs, out_path, rows_per_block);
    DASSA_SLOG(kInfo, "repack.concat_serial")
            .field("inputs", static_cast<std::uint64_t>(inputs.size()))
            .field("out", out_path)
            .field("bytes_read", stats.bytes_read)
            .field("bytes_written", stats.bytes_written)
        << stats.seconds << "s";
  } else {
    io::RepackOptions opts;
    opts.codec = codec;
    if (args.has("--chunk")) {
      opts.chunk = parse_chunk(args.get("--chunk"));
    } else {
      opts.chunk = {32, 1024};
    }
    report = io::parallel_repack(inputs, out_path, opts, ranks);
    report_ptr = &report;
    std::uint64_t max_src = 0;
    std::uint64_t sum_src = 0;
    for (const std::uint64_t b : report.rank_source_bytes) {
      max_src = std::max(max_src, b);
      sum_src += b;
    }
    DASSA_SLOG(kInfo, "repack.concat_parallel")
            .field("inputs", static_cast<std::uint64_t>(inputs.size()))
            .field("out", out_path)
            .field("ranks", static_cast<std::uint64_t>(ranks))
            .field("chunks", static_cast<std::uint64_t>(report.n_chunks))
            .field("out_bytes", report.out_bytes)
            .field("source_bytes", sum_src)
            .field("max_rank_source_bytes", max_src)
        << report.seconds << "s";
  }

  if (want_telemetry) {
    sampler.tick();  // capture the end state deterministically
    sampler.stop();
    export_telemetry(args.get("--telemetry"), inputs.size(), report_ptr,
                     sampler);
  }

  if (args.has("--verify")) {
    const io::Vca vca = io::Vca::build(inputs);
    const io::Dash5File check(out_path);
    if (!datasets_match(vca, check, rows_per_block)) {
      DASSA_SLOG(kError, "repack.verify_failed").field("out", out_path);
      return 1;
    }
    DASSA_SLOG(kInfo, "repack.verify") << "bit-exact concatenation ok";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (args.positional().size() < 2) {
    std::cerr << "usage: das_repack <in.dh5> [<in2.dh5> ...] <out.dh5> "
                 "[--codec CHAIN] [--chunk RxC] [--contiguous] "
                 "[--rows-per-block N] [--ranks N] [--verify] "
                 "[--save-vca out.vca] [--telemetry out.jsonl]\n";
    return 2;
  }
  const std::string in_path = args.positional().front();
  const std::string out_path = args.positional().back();
  dassa::set_log_level(dassa::LogLevel::kInfo);
  try {
    if (args.positional().size() > 2 || args.has("--ranks")) {
      const std::vector<std::string> inputs(args.positional().begin(),
                                            args.positional().end() - 1);
      const int rc = run_concat(args, inputs, out_path);
      if (rc == 0 && args.has("--save-vca")) {
        // Publish the source set as an indexed VCA (.vca + .tix
        // sidecar): the serving layer reads the same members this
        // repack just concatenated, with sub-linear time lookups.
        das::save_vca_with_index(io::Vca::build(inputs),
                                 args.get("--save-vca"));
        DASSA_SLOG(kInfo, "repack.save_vca")
            .field("path", args.get("--save-vca"))
            .field("members", static_cast<std::uint64_t>(inputs.size()));
      }
      return rc;
    }
    const io::Dash5File in(in_path);
    const auto rows_per_block = static_cast<std::size_t>(
        args.get_long("--rows-per-block", 64));
    DASSA_CHECK(rows_per_block >= 1, "--rows-per-block must be >= 1");

    io::Dash5Header header = io::Dash5File::read_header(in_path);
    header.codec = io::CodecSpec::parse(args.get("--codec", "none"));
    if (args.has("--contiguous")) {
      DASSA_CHECK(header.codec.empty(),
                  "--contiguous cannot carry a codec chain");
      header.layout = io::Layout::kContiguous;
      header.chunk = {0, 0};
    } else if (args.has("--chunk")) {
      header.layout = io::Layout::kChunked;
      header.chunk = parse_chunk(args.get("--chunk"));
    } else if (!header.codec.empty() &&
               header.layout != io::Layout::kChunked) {
      header.layout = io::Layout::kChunked;
      header.chunk = {32, 1024};
    }
    // The stream writer takes contiguous (no codec) or chunked+codec;
    // a plain chunked v2 rewrite goes through the one-shot writer.
    const bool streamed =
        header.codec.empty() ? header.layout == io::Layout::kContiguous
                             : true;
    if (streamed) {
      io::Dash5StreamWriter out(out_path, header);
      const Shape2D shape = in.shape();
      for (std::size_t r0 = 0; r0 < shape.rows; r0 += rows_per_block) {
        const std::size_t cnt = std::min(rows_per_block, shape.rows - r0);
        out.append(in.read_slab({r0, 0, cnt, shape.cols}));
      }
      out.close();
    } else {
      io::dash5_write(out_path, header, in.read_all());
    }

    const auto in_bytes = std::filesystem::file_size(in_path);
    const auto out_bytes = std::filesystem::file_size(out_path);
    DASSA_SLOG(kInfo, "repack.done")
            .field("in", in_path)
            .field("in_version", int{in.version()})
            .field("in_bytes", static_cast<std::uint64_t>(in_bytes))
            .field("out", out_path)
            .field("codec", header.codec.str())
            .field("out_bytes", static_cast<std::uint64_t>(out_bytes))
        << static_cast<double>(in_bytes) / static_cast<double>(out_bytes)
        << "x";

    if (args.has("--verify")) {
      const io::Dash5File check(out_path);
      if (!datasets_match(in, check, rows_per_block)) {
        DASSA_SLOG(kError, "repack.verify_failed")
            .field("out", out_path)
            .field("in", in_path);
        return 1;
      }
      DASSA_SLOG(kInfo, "repack.verify") << "bit-exact roundtrip ok";
    }
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "repack.fail") << e.what();
    return 1;
  }
}
