// das_trace: inspect and validate chrome-trace JSON exported by
// `das_analyze --trace` (docs/OBSERVABILITY.md).
//
// Usage:
//   das_trace <trace.json>              validate, then print per-name
//                                       span statistics and lane counts
//   das_trace <trace.json> --validate   validate only (exit 0/1)
//   das_trace <trace.json> --cat dsp    restrict the report to one
//                                       span category
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "arg_parse.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/trace.hpp"

namespace {

using dassa::trace::ChromeEvent;

struct NameStats {
  std::string cat;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

/// Pair up B/E events per (pid, tid) lane and fold the durations into
/// per-name statistics. validate_chrome_trace already proved the pairs
/// balance, so the stack discipline here cannot fail.
std::map<std::string, NameStats> fold_stats(
    const std::vector<ChromeEvent>& events, const std::string& cat_filter) {
  std::map<std::string, NameStats> stats;
  std::map<std::pair<long long, long long>, std::vector<const ChromeEvent*>>
      lanes;
  for (const ChromeEvent& e : events) {
    if (e.ph == "B") {
      lanes[{e.pid, e.tid}].push_back(&e);
    } else if (e.ph == "E") {
      auto& stack = lanes[{e.pid, e.tid}];
      const ChromeEvent& open = *stack.back();
      stack.pop_back();
      if (!cat_filter.empty() && open.cat != cat_filter) continue;
      NameStats& ns = stats[open.name];
      ns.cat = open.cat;
      ns.count += 1;
      const double dur = e.ts_us - open.ts_us;
      ns.total_us += dur;
      ns.max_us = std::max(ns.max_us, dur);
    }
  }
  return stats;
}

void print_report(const std::vector<ChromeEvent>& events,
                  const std::string& cat_filter) {
  std::set<long long> pids;
  std::set<std::pair<long long, long long>> lanes;
  std::uint64_t spans = 0;
  for (const ChromeEvent& e : events) {
    if (e.ph != "B") continue;
    pids.insert(e.pid);
    lanes.insert({e.pid, e.tid});
    ++spans;
  }
  std::cout << spans << " spans across " << pids.size()
            << " process lanes (" << lanes.size() << " threads)\n";

  const std::map<std::string, NameStats> stats =
      fold_stats(events, cat_filter);
  std::cout << "name                             cat        count"
               "     total_ms       max_ms\n";
  for (const auto& [name, ns] : stats) {
    char line[160];
    std::snprintf(line, sizeof line, "%-32s %-10s %6llu %12.3f %12.3f\n",
                  name.c_str(), ns.cat.c_str(),
                  static_cast<unsigned long long>(ns.count),
                  ns.total_us / 1000.0, ns.max_us / 1000.0);
    std::cout << line;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const dassa::tools::Args args(argc, argv);
  if (args.positional().empty()) {
    std::cerr << "usage: das_trace <trace.json> [--validate] [--cat CAT]\n";
    return 2;
  }
  const std::string path = args.positional().front();
  try {
    std::ifstream in(path);
    if (!in.good()) {
      throw dassa::IoError("cannot open trace file: " + path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::vector<ChromeEvent> events =
        dassa::trace::parse_chrome_trace(buf.str());
    dassa::trace::validate_chrome_trace(events);
    if (args.has("--validate")) {
      std::cout << path << ": valid chrome trace, " << events.size()
                << " events\n";
      return 0;
    }
    print_report(events, args.get("--cat", ""));
    return 0;
  } catch (const std::exception& e) {
    DASSA_SLOG(kError, "trace.fail").field("file", path) << e.what();
    return 1;
  }
}
