// Auto-tuning demo (the paper's future work: "how to automatically
// select system settings, such as the number of nodes, to run the
// analysis code").
//
// Calibrates the per-channel cost of the interferometry UDF on a few
// sample channels of a local acquisition, projects the workload to the
// paper's full scale (11648 channels, 2880 x 700 MB files) on a
// Cori-like cluster, sweeps node counts under the same cost models the
// benches use, and prints the fastest and the recommended (knee) node
// counts -- the quantity the paper eyeballed as "364 nodes gives the
// best efficiency".
#include <filesystem>
#include <iomanip>
#include <iostream>

#include "dassa/core/autotune.hpp"
#include "dassa/das/interferometry.hpp"
#include "dassa/das/synth.hpp"

int main() {
  using namespace dassa;
  const std::string dir = "autotune_data";
  std::filesystem::create_directories(dir);

  // A small local acquisition used only for calibration.
  const std::size_t channels = 32;
  const das::SynthDas synth = das::SynthDas::fig1b_scene(channels, 100.0);
  das::AcquisitionSpec spec;
  spec.dir = dir;
  spec.start = das::Timestamp::parse("170728224510");
  spec.file_count = 2;
  spec.seconds_per_file = 4.0;
  io::Vca vca = io::Vca::build(das::write_acquisition(synth, spec));

  das::InterferometryParams params;
  params.sampling_hz = 100.0;
  params.band_lo_hz = 2.0;
  params.band_hi_hz = 30.0;
  params.resample_down = 2;

  // Calibrate seconds-per-channel for this exact UDF chain.
  const std::vector<double> master =
      vca.read_slab(Slab2D{0, 0, 1, vca.shape().cols});
  const core::RowUdf udf = das::make_interferometry_udf(
      params, das::interferometry_spectrum(master, params));
  const double sec_per_channel = core::calibrate_row_udf(vca, udf);
  std::cout << "calibrated cost: " << sec_per_channel
            << " s/channel at " << vca.shape().cols << " samples\n";

  // Project to the paper's workload. Compute cost scales ~linearly in
  // samples per channel (FFT log factor ignored -- conservative).
  const double paper_samples = 2880.0 * 30000.0;
  const double scale = paper_samples / static_cast<double>(vca.shape().cols);

  core::ClusterSpec cluster;  // Cori-like defaults
  cluster.max_nodes = 1456;
  cluster.cores_per_node = 8;

  core::WorkloadSpec workload;
  workload.data_shape = {11648, static_cast<std::size_t>(paper_samples)};
  workload.file_count = 2880;
  workload.file_bytes = 700ULL * 1000 * 1000;
  workload.work_units = 11648;
  workload.seconds_per_unit = sec_per_channel * scale;

  const core::TuneResult result = core::autotune_nodes(cluster, workload);

  std::cout << "\nnode sweep (paper-scale workload, Cori-like cluster):\n";
  std::cout << std::setw(8) << "nodes" << std::setw(14) << "compute_s"
            << std::setw(12) << "io_s" << std::setw(12) << "total_s"
            << "\n";
  for (const core::TunePoint& p : result.sweep) {
    std::cout << std::setw(8) << p.nodes << std::setw(14)
              << std::setprecision(4) << p.compute_seconds << std::setw(12)
              << p.io_seconds << std::setw(12) << p.total() << "\n";
  }
  std::cout << "\nfastest: " << result.best_nodes << " nodes ("
            << result.best_seconds << " s)\n"
            << "recommended (knee): " << result.recommended_nodes
            << " nodes (" << result.recommended_seconds
            << " s) -- past this, doubling nodes buys <"
            << core::TuneResult::kKneeSpeedup << "x\n"
            << "(paper: best efficiency observed at 364 of 1456 nodes)\n";
  return 0;
}
