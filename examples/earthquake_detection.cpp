// Earthquake detection via local similarity (paper Algorithm 2 and
// Fig. 10).
//
// Generates a 6-minute-style record containing two vehicles, one
// M4.4-like earthquake and a persistent vibration source (paper
// Fig. 1b), runs the local-similarity UDF distributed over a simulated
// cluster, and renders the detection map as ASCII art plus a CSV for
// plotting. The three event signatures are clearly visible: slanted
// vehicle tracks, the near-simultaneous earthquake stripe, and the
// persistent column.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "dassa/das/events.hpp"
#include "dassa/das/local_similarity.hpp"
#include "dassa/das/search.hpp"
#include "dassa/das/synth.hpp"

int main() {
  using namespace dassa;
  const std::string dir = "earthquake_data";
  std::filesystem::create_directories(dir);

  // A compressed version of the paper's 6-minute record: 96 channels
  // at 25 Hz. The fig1b scene places vehicles at ~20 s and ~120 s and
  // the quake at ~210 s.
  const std::size_t channels = 96;
  const double rate = 25.0;
  const double total_seconds = 360.0;
  const das::SynthDas synth = das::SynthDas::fig1b_scene(channels, rate);

  das::AcquisitionSpec spec;
  spec.dir = dir;
  spec.start = das::Timestamp::parse("170728224510");
  spec.file_count = 6;
  spec.seconds_per_file = total_seconds / 6.0;  // six "1-minute" files
  const auto paths = das::write_acquisition(synth, spec);
  io::Vca vca = io::Vca::build(paths);
  std::cout << "input: " << vca.shape() << " (" << paths.size()
            << " files)\n";

  // Algorithm 2 parameters: 1-second windows, +-0.4 s lag search,
  // neighbours one channel away.
  das::LocalSimilarityParams params;
  params.window_half = 12;   // M: ~1 s at 25 Hz
  params.lag_half = 10;      // L
  params.channel_offset = 1; // K

  core::EngineConfig config;
  config.nodes = 4;
  config.cores_per_node = 2;
  const core::EngineReport report =
      das::local_similarity_distributed(config, vca, params);
  std::cout << "similarity map: " << report.output.shape << ", stages: "
            << report.stages << "\n";

  // Reduce to a coarse (channel x time-bin) detection map.
  const std::size_t ch_bins = 32;
  const std::size_t t_bins = 72;  // 5 s per bin
  const Shape2D out = report.output.shape;
  std::vector<double> map(ch_bins * t_bins, 0.0);
  std::vector<int> hits(ch_bins * t_bins, 0);
  for (std::size_t ch = 0; ch < out.rows; ++ch) {
    for (std::size_t t = 0; t < out.cols; ++t) {
      const std::size_t cb = ch * ch_bins / out.rows;
      const std::size_t tb = t * t_bins / out.cols;
      map[cb * t_bins + tb] += report.output.at(ch, t);
      hits[cb * t_bins + tb] += 1;
    }
  }
  for (std::size_t i = 0; i < map.size(); ++i) {
    if (hits[i] > 0) map[i] /= hits[i];
  }

  // CSV for plotting (channel bin, time bin, mean similarity).
  std::ofstream csv("earthquake_detection_map.csv");
  csv << "channel_bin,time_bin,seconds,mean_similarity\n";
  for (std::size_t cb = 0; cb < ch_bins; ++cb) {
    for (std::size_t tb = 0; tb < t_bins; ++tb) {
      csv << cb << "," << tb << ","
          << static_cast<double>(tb) * total_seconds /
                 static_cast<double>(t_bins)
          << ","
          << map[cb * t_bins + tb] << "\n";
    }
  }
  std::cout << "wrote earthquake_detection_map.csv\n\n";

  // ASCII rendering (time left-to-right, channels top-to-bottom),
  // thresholded against the noise floor -- compare with paper Fig. 10.
  double floor = 0.0;
  for (double v : map) floor += v;
  floor /= static_cast<double>(map.size());
  std::cout << "detection map (.:low  *:event  #:strong), "
            << "x: time 0-" << total_seconds << " s, y: channel\n";
  for (std::size_t cb = 0; cb < ch_bins; ++cb) {
    for (std::size_t tb = 0; tb < t_bins; ++tb) {
      const double v = map[cb * t_bins + tb];
      std::cout << (v > floor * 1.8 ? '#' : (v > floor * 1.3 ? '*' : '.'));
    }
    std::cout << "\n";
  }
  std::cout << "\nexpected signatures: two slanted vehicle tracks "
               "(~20 s and ~120 s), an earthquake stripe across all "
               "channels (~215 s), a persistent row near channel bins "
            << (ch_bins * 78) / 100 << "-" << (ch_bins * 82) / 100 << "\n";

  // Automatic event extraction: what the geophysicist reads off the
  // map, as a catalog.
  std::cout << "\nevent catalog (largest first):\n";
  for (const das::DetectedEvent& e : das::detect_events(report.output)) {
    std::cout << "  " << das::describe(e, rate) << "\n";
  }
  return 0;
}
