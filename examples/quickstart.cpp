// Quickstart: the full DASSA round trip in ~60 lines of user code.
//
//  1. Generate a small synthetic DAS acquisition (stand-in for an
//     interrogator writing 1-minute HDF5 files).
//  2. Find the files with the catalog (das_search, paper Section IV-A).
//  3. Merge them virtually into a VCA -- no data copied.
//  4. Run a three-point moving average (the paper's introductory
//     Stencil example) over the whole array with the HAEE engine on a
//     simulated 2-node x 2-core cluster.
//
// Everything below the data generation is exactly what an analysis
// script against real DAS data would look like.
#include <filesystem>
#include <iostream>

#include "dassa/core/haee.hpp"
#include "dassa/das/search.hpp"
#include "dassa/das/synth.hpp"

int main() {
  using namespace dassa;
  const std::string dir = "quickstart_data";
  std::filesystem::create_directories(dir);

  // 1. A 64-channel, 50 Hz acquisition split over four "minute" files.
  const das::SynthDas synth = das::SynthDas::fig1b_scene(64, 50.0);
  das::AcquisitionSpec spec;
  spec.dir = dir;
  spec.start = das::Timestamp::parse("170728224510");
  spec.file_count = 4;
  spec.seconds_per_file = 4.0;
  das::write_acquisition(synth, spec);

  // 2. Search: the first three files after the start timestamp.
  const das::Catalog catalog = das::Catalog::scan(dir);
  const auto hits =
      catalog.query_range(das::Timestamp::parse("170728224510"), 3);
  std::cout << "das_search found " << hits.size() << " files\n";

  // 3. Virtual concatenation: metadata only, no bytes moved.
  io::Vca vca = io::Vca::build(das::Catalog::paths(hits));
  std::cout << "VCA shape: " << vca.shape() << " over "
            << vca.members().size() << " files\n";

  // 4. The paper's Stencil example as a UDF, run hybrid-parallel:
  //    f(S) = (S(-1) + S(0) + S(1)) / 3 along time.
  const core::ScalarUdf moving_average = [](const core::Stencil& s) {
    const double left = s.in_bounds(-1, 0) ? s(-1, 0) : s(0, 0);
    const double right = s.in_bounds(1, 0) ? s(1, 0) : s(0, 0);
    return (left + s(0, 0) + right) / 3.0;
  };

  core::EngineConfig config;
  config.nodes = 2;           // simulated computing nodes
  config.cores_per_node = 2;  // ApplyMT threads per node
  const core::EngineReport report = core::run_cells(
      config, vca,
      [&](const core::RankContext&) { return moving_average; });

  std::cout << "smoothed array: " << report.output.shape << "\n"
            << "stage walls: " << report.stages << "\n"
            << "messages exchanged: " << report.comm.p2p_sends << "\n";

  // A couple of values, to show the output is real.
  std::cout << "smoothed[ch=10, t=100..103] =";
  for (std::size_t t = 100; t < 104; ++t) {
    std::cout << " " << report.output.at(10, t);
  }
  std::cout << "\n";
  return 0;
}
