// Traffic-noise interferometry (paper Algorithm 3).
//
// Runs the ambient-noise interferometry pipeline -- detrend, zero-phase
// Butterworth bandpass, resample, FFT, correlation against a master
// channel -- over a synthetic acquisition, in both engine
// configurations the paper compares:
//   * HAEE (hybrid): 1 rank per node, threads inside;
//   * original ArrayUDF (MPI-per-core): 1 rank per core.
// Prints the per-channel similarity profile and the master-channel
// duplication + I/O call counts that distinguish the two modes
// (paper Section V-B / Fig. 8).
#include <filesystem>
#include <fstream>
#include <iostream>

#include "dassa/common/counters.hpp"
#include "dassa/das/interferometry.hpp"
#include "dassa/das/synth.hpp"

int main() {
  using namespace dassa;
  const std::string dir = "interferometry_data";
  std::filesystem::create_directories(dir);

  const std::size_t channels = 48;
  const double rate = 100.0;
  const das::SynthDas synth = das::SynthDas::fig1b_scene(channels, rate);
  das::AcquisitionSpec spec;
  spec.dir = dir;
  spec.start = das::Timestamp::parse("170728224510");
  spec.file_count = 4;
  spec.seconds_per_file = 8.0;
  io::Vca vca = io::Vca::build(das::write_acquisition(synth, spec));
  std::cout << "input: " << vca.shape() << "\n";

  das::InterferometryParams params;
  params.sampling_hz = rate;
  params.butter_order = 3;
  params.band_lo_hz = 2.0;
  params.band_hi_hz = 30.0;
  params.resample_down = 2;
  params.master_channel = channels / 2;

  struct ModeSpec {
    const char* name;
    core::EngineMode mode;
    core::ReadMethod read;
  };
  for (const ModeSpec m :
       {ModeSpec{"HAEE (1 rank/node x 4 threads)", core::EngineMode::kHybrid,
                 core::ReadMethod::kCommunicationAvoiding},
        ModeSpec{"ArrayUDF (1 rank/core)", core::EngineMode::kMpiPerCore,
                 core::ReadMethod::kDirectPerRank}}) {
    core::EngineConfig config;
    config.nodes = 2;
    config.cores_per_node = 4;
    config.mode = m.mode;
    config.read_method = m.read;

    global_counters().reset();
    const core::EngineReport report =
        das::interferometry_distributed(config, vca, params);
    std::cout << "\n== " << m.name << " ==\n"
              << "  world: " << report.world_size << " ranks x "
              << report.threads_per_rank << " threads\n"
              << "  stages: " << report.stages << "\n"
              << "  master-channel copies: "
              << global_counters().get(counters::kMemMasterChannelCopies)
              << "\n"
              << "  I/O read calls: "
              << global_counters().get(counters::kIoReadCalls) << "\n"
              << "  modeled peak bytes/node: "
              << report.modeled_peak_bytes_per_node << "\n";

    if (m.mode == core::EngineMode::kHybrid) {
      std::ofstream csv("interferometry_profile.csv");
      csv << "channel,abscorr_vs_master\n";
      for (std::size_t ch = 0; ch < channels; ++ch) {
        csv << ch << "," << report.output.at(ch, 0) << "\n";
      }
      std::cout << "  wrote interferometry_profile.csv\n";
      std::cout << "  similarity vs master (channel " << params.master_channel
                << "): ";
      for (std::size_t ch = 0; ch < channels; ch += 6) {
        std::cout << report.output.at(ch, 0) << " ";
      }
      std::cout << "\n  (master channel itself scores "
                << report.output.at(params.master_channel, 0) << ")\n";
    }
  }
  return 0;
}
