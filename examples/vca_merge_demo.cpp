// Storage-engine tour: search, VCA vs RCA, LAV subsetting, and the
// three parallel read strategies (paper Sections IV and IV-B).
//
// Demonstrates, with numbers printed at each step:
//   * das_search range + regex queries over an acquisition,
//   * VCA construction touching only metadata vs RCA reading all data
//     (Table I / Fig. 6 asymmetry),
//   * an LAV selecting a channel subset of the VCA (Fig. 3),
//   * reading the VCA with collective-per-file vs communication-
//     avoiding, reporting wall time, broadcasts, and modeled time
//     (Fig. 5 / Fig. 7).
#include <filesystem>
#include <iostream>

#include "dassa/common/counters.hpp"
#include "dassa/common/timer.hpp"
#include "dassa/das/search.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/io/par_read.hpp"
#include "dassa/mpi/runtime.hpp"

int main() {
  using namespace dassa;
  const std::string dir = "merge_demo_data";
  std::filesystem::create_directories(dir);

  const das::SynthDas synth = das::SynthDas::fig1b_scene(64, 100.0);
  das::AcquisitionSpec spec;
  spec.dir = dir;
  spec.start = das::Timestamp::parse("170728224510");
  spec.file_count = 8;
  spec.seconds_per_file = 2.0;
  das::write_acquisition(synth, spec);

  // --- search ---------------------------------------------------------
  WallTimer timer;
  const das::Catalog catalog = das::Catalog::scan(dir);
  std::cout << "scanned " << catalog.size() << " files in " << timer.seconds()
            << " s\n";
  const auto range_hits =
      catalog.query_range(das::Timestamp::parse("170728224512"), 6);
  const auto regex_hits = catalog.query_regex("1707282245(1[24]|20)");
  std::cout << "range query -> " << range_hits.size()
            << " files, regex query -> " << regex_hits.size() << " files\n";

  // --- VCA vs RCA (Table I) ---------------------------------------------
  const auto paths = das::Catalog::paths(range_hits);
  global_counters().reset();
  timer.reset();
  io::Vca vca = io::Vca::build(paths);
  vca.save(dir + "/merged.vca");
  const double vca_seconds = timer.seconds();
  const auto vca_bytes = global_counters().get(counters::kIoReadBytes);

  global_counters().reset();
  const io::RcaBuildStats rca = io::rca_create(paths, dir + "/merged.dh5");
  std::cout << "VCA build: " << vca_seconds << " s, " << vca_bytes
            << " bytes read (metadata only)\n"
            << "RCA build: " << rca.seconds << " s, " << rca.bytes_read
            << " bytes read, " << rca.bytes_written << " bytes written\n"
            << "RCA/VCA construction ratio: " << rca.seconds / vca_seconds
            << "x\n";

  // --- LAV (Fig. 3) ------------------------------------------------------
  auto shared_vca = std::make_shared<io::Vca>(vca);
  io::Lav lav(shared_vca, Slab2D{16, 100, 8, 200});
  const std::vector<double> subset = lav.read_all();
  std::cout << "LAV " << lav.shape() << " subset read, first value "
            << subset.front() << "\n";

  // --- parallel read strategies (Fig. 5 / Fig. 7) -------------------------
  const int ranks = 4;
  struct Strategy {
    const char* name;
    io::ParallelReadResult (*fn)(mpi::Comm&, const io::Vca&,
                                 const io::IoCostParams&);
  };
  for (const Strategy s :
       {Strategy{"collective-per-file", io::read_vca_collective_per_file},
        Strategy{"communication-avoiding", io::read_vca_comm_avoiding},
        Strategy{"direct-per-rank", io::read_vca_direct_per_rank}}) {
    global_counters().reset();
    timer.reset();
    const mpi::RunReport report =
        mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
          (void)s.fn(comm, vca, io::IoCostParams{});
        });
    std::cout << s.name << ": wall " << timer.seconds() << " s, broadcasts "
              << global_counters().get(counters::kMpiBcasts)
              << ", p2p messages " << report.aggregate().p2p_sends
              << ", read calls "
              << global_counters().get(counters::kIoReadCalls)
              << ", modeled " << report.aggregate().modeled_seconds << " s\n";
  }
  return 0;
}
