// Beyond DAS: per-domain simulation files analysed as one array (the
// paper's second future-work direction: "apply the DASSA in other
// applications, such as plasma simulation, which may store the data of
// each simulated domain as an individual file and lots of domains may
// be grouped as the input of analysis operations").
//
// A toy plasma-turbulence field is written as one DASH5 file per
// spatial domain (the per-timestep dump layout such codes use). The
// domain files are grouped with a VCA exactly like DAS minute files,
// and two UDFs run through the same HAEE engine:
//   * a cell UDF: local gradient-energy |grad phi|^2, a standard
//     turbulence diagnostic with Stencil structural locality;
//   * a row UDF: per-field-line fluctuation RMS.
// Nothing in DASSA's engine is DAS-specific -- the point of this
// example.
#include <cmath>
#include <filesystem>
#include <iostream>
#include <numbers>

#include "dassa/core/haee.hpp"
#include "dassa/io/dash5.hpp"

namespace {

using namespace dassa;

/// A deterministic "plasma potential" phi over field lines x cells:
/// drifting waves + an island structure, per domain.
double phi(std::size_t line, std::size_t global_cell) {
  const double y = static_cast<double>(line);
  const double x = static_cast<double>(global_cell);
  return std::sin(0.07 * x + 0.3 * y) + 0.5 * std::sin(0.023 * x) +
         0.3 * std::cos(0.11 * x - 0.05 * y * y / 40.0);
}

}  // namespace

int main() {
  const std::string dir = "plasma_data";
  std::filesystem::create_directories(dir);

  // 8 domains, each 48 field lines x 256 cells, one file per domain.
  const std::size_t lines = 48;
  const std::size_t cells_per_domain = 256;
  const std::size_t domains = 8;

  std::vector<std::string> files;
  for (std::size_t d = 0; d < domains; ++d) {
    io::Dash5Header header;
    header.shape = {lines, cells_per_domain};
    header.global.set("Simulation", "toy-drift-turbulence");
    header.global.set_i64("DomainIndex", static_cast<std::int64_t>(d));
    std::vector<double> data(header.shape.size());
    for (std::size_t l = 0; l < lines; ++l) {
      for (std::size_t c = 0; c < cells_per_domain; ++c) {
        data[header.shape.at(l, c)] = phi(l, d * cells_per_domain + c);
      }
    }
    const std::string path = dir + "/domain_" + std::to_string(d) + ".dh5";
    io::dash5_write(path, header, data);
    files.push_back(path);
  }

  // Group the domain files -- the paper's proposed usage, verbatim.
  io::Vca vca = io::Vca::build(files);
  std::cout << "grouped " << domains << " domain files into "
            << vca.shape().str() << "\n";

  // Cell UDF: gradient energy with a ghost line of 1. Domain
  // boundaries are seamless because the VCA presents one logical array.
  const core::ScalarUdf grad_energy = [](const core::Stencil& s) {
    if (!s.in_bounds(-1, 0) || !s.in_bounds(1, 0) || !s.in_bounds(0, -1) ||
        !s.in_bounds(0, 1)) {
      return 0.0;
    }
    const double dx = 0.5 * (s(1, 0) - s(-1, 0));
    const double dy = 0.5 * (s(0, 1) - s(0, -1));
    return dx * dx + dy * dy;
  };

  core::EngineConfig config;
  config.nodes = 4;
  config.cores_per_node = 2;
  config.halo_channels = 1;
  const core::EngineReport energy = core::run_cells(
      config, vca, [&](const core::RankContext&) { return grad_energy; });

  double total_energy = 0.0;
  for (double v : energy.output.data) total_energy += v;
  std::cout << "gradient-energy field " << energy.output.shape
            << ", total energy " << total_energy << "\n";

  // Row UDF: per-field-line RMS fluctuation (mean removed).
  const core::RowUdf line_rms = [](const core::Stencil& s) {
    const std::span<const double> row = s.row_span(0);
    double mean = 0.0;
    for (double v : row) mean += v;
    mean /= static_cast<double>(row.size());
    double acc = 0.0;
    for (double v : row) acc += (v - mean) * (v - mean);
    return std::vector<double>{
        std::sqrt(acc / static_cast<double>(row.size()))};
  };
  const core::EngineReport rms = core::run_rows(
      config, vca, [&](const core::RankContext&) { return line_rms; });

  std::cout << "per-field-line RMS (every 8th line):";
  for (std::size_t l = 0; l < lines; l += 8) {
    std::cout << " " << rms.output.at(l, 0);
  }
  std::cout << "\nsame engine, same storage path, zero DAS-specific code\n";

  // Sanity: the seam between domains 0 and 1 must be invisible in the
  // energy field (the analytic field is continuous across files).
  const std::size_t seam = cells_per_domain;
  const double at_seam = energy.output.at(lines / 2, seam);
  const double near_seam = energy.output.at(lines / 2, seam + 4);
  std::cout << "seam check: energy at domain boundary " << at_seam
            << " vs nearby " << near_seam << " (no discontinuity)\n";
  return std::abs(at_seam - near_seam) < 1.0 ? 0 : 1;
}
