// Advanced workflow: the full production-style chain on one synthetic
// acquisition, using the newer APIs together --
//
//   1. channel QC: find dead/noisy channels (a real DAS array always
//      has some; here two are injected);
//   2. Welch PSD on a good channel to pick the analysis band;
//   3. a ChannelPipeline built from that band (the future-work
//      composition API);
//   4. windowed noise-correlation STACKING against a master channel
//      over the good channels only (the paper's "3D intermediate"
//      collapsed by stacking);
//   5. auto-tune the node count for the same job at 10x the data.
#include <filesystem>
#include <iostream>

#include "dassa/core/autotune.hpp"
#include "dassa/das/channel_qc.hpp"
#include "dassa/das/pipeline.hpp"
#include "dassa/das/stacking.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/dsp/daslib.hpp"

int main() {
  using namespace dassa;
  const std::string dir = "advanced_data";
  std::filesystem::create_directories(dir);
  const std::size_t channels = 32;
  const double rate = 100.0;

  // --- acquisition with injected bad channels ---------------------------
  const das::SynthDas synth = das::SynthDas::fig1b_scene(channels, rate);
  das::AcquisitionSpec spec;
  spec.dir = dir;
  spec.start = das::Timestamp::parse("170728224510");
  spec.file_count = 3;
  spec.seconds_per_file = 8.0;
  spec.dtype = io::DType::kF64;
  io::Vca vca = io::Vca::build(das::write_acquisition(synth, spec));

  core::Array2D data(vca.shape(), vca.read_all());
  for (std::size_t t = 0; t < data.shape.cols; ++t) {
    data.at(5, t) = 0.0;      // dead splice
    data.at(20, t) *= 25.0;   // screaming channel
  }

  // --- 1. QC --------------------------------------------------------------
  const das::ChannelQcReport qc = das::channel_qc(data);
  std::cout << "QC: " << qc.count(das::ChannelStatus::kGood) << " good, "
            << qc.count(das::ChannelStatus::kDead) << " dead, "
            << qc.count(das::ChannelStatus::kNoisy)
            << " noisy (median rms " << qc.median_rms << ")\n";
  const std::vector<std::size_t> good = qc.good_channels();

  // --- 2. band selection from the PSD of a good channel -------------------
  dsp::WelchParams wp;
  wp.segment = 256;
  wp.overlap = 128;
  const std::vector<double> psd =
      daslib::Das_psd(data.row(good.front()), rate, wp);
  std::size_t peak_bin = 1;
  for (std::size_t b = 2; b + 1 < psd.size(); ++b) {
    if (psd[b] > psd[peak_bin]) peak_bin = b;
  }
  const double peak_hz = dsp::welch_bin_hz(peak_bin, rate, wp);
  const double band_lo = std::max(1.0, peak_hz / 3.0);
  const double band_hi = std::min(0.45 * rate, peak_hz * 3.0);
  std::cout << "PSD peak at " << peak_hz << " Hz -> analysis band ["
            << band_lo << ", " << band_hi << "] Hz\n";

  // --- 3. composable pipeline --------------------------------------------
  das::ChannelPipeline pipe(rate);
  pipe.detrend().despike(8, 8.0).bandpass(3, band_lo, band_hi);
  std::cout << "pipeline:";
  for (const auto& name : pipe.stage_names()) std::cout << " " << name;
  std::cout << "\n";

  // --- 4. windowed stacking over the good channels ------------------------
  das::StackingParams sp;
  sp.base.sampling_hz = rate;
  sp.base.band_lo_hz = band_lo;
  sp.base.band_hi_hz = band_hi;
  sp.base.resample_down = 2;
  sp.window_samples = 400;
  const std::size_t master = good[good.size() / 2];
  std::cout << "stacking " << stack_window_count(data.shape.cols, sp)
            << " windows per channel against master " << master << "\n";

  std::vector<double> master_row(data.row(master).begin(),
                                 data.row(master).end());
  double zero_lag_mean = 0.0;
  for (const std::size_t ch : good) {
    const std::vector<double> ncf = das::stacked_ncf(
        data.row(ch), master_row, sp);
    zero_lag_mean += ncf[0];
  }
  zero_lag_mean /= static_cast<double>(good.size());
  std::cout << "mean zero-lag stacked NCF over good channels: "
            << zero_lag_mean << "\n";

  // --- 5. how many nodes would the 10x job want? ---------------------------
  const core::RowUdf udf = pipe.build();
  io::MemorySource source(data.shape, data.data);
  const double sec = core::calibrate_row_udf(source, udf, 3);
  core::ClusterSpec cluster;
  cluster.max_nodes = 128;
  cluster.cores_per_node = 8;
  core::WorkloadSpec workload = core::workload_for_rows(vca, sec * 10.0);
  workload.work_units = channels * 10;
  const core::TuneResult tune = core::autotune_nodes(cluster, workload);
  std::cout << "auto-tune at 10x data: fastest " << tune.best_nodes
            << " nodes, recommended " << tune.recommended_nodes
            << " nodes\n";
  return qc.count(das::ChannelStatus::kDead) == 1 &&
                 qc.count(das::ChannelStatus::kNoisy) == 1
             ? 0
             : 1;
}
