# Empty compiler generated dependencies file for dsp_test_fft.
# This may be replaced when dependencies are built.
