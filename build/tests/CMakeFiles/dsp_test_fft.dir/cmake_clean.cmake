file(REMOVE_RECURSE
  "CMakeFiles/dsp_test_fft.dir/dsp/test_fft.cpp.o"
  "CMakeFiles/dsp_test_fft.dir/dsp/test_fft.cpp.o.d"
  "dsp_test_fft"
  "dsp_test_fft.pdb"
  "dsp_test_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
