# Empty compiler generated dependencies file for io_test_kv_fileio.
# This may be replaced when dependencies are built.
