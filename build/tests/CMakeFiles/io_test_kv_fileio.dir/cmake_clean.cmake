file(REMOVE_RECURSE
  "CMakeFiles/io_test_kv_fileio.dir/io/test_kv_fileio.cpp.o"
  "CMakeFiles/io_test_kv_fileio.dir/io/test_kv_fileio.cpp.o.d"
  "io_test_kv_fileio"
  "io_test_kv_fileio.pdb"
  "io_test_kv_fileio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_test_kv_fileio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
