# Empty compiler generated dependencies file for integration_test_properties.
# This may be replaced when dependencies are built.
