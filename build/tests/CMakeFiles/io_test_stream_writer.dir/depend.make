# Empty dependencies file for io_test_stream_writer.
# This may be replaced when dependencies are built.
