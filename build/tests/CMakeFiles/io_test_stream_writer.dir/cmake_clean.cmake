file(REMOVE_RECURSE
  "CMakeFiles/io_test_stream_writer.dir/io/test_stream_writer.cpp.o"
  "CMakeFiles/io_test_stream_writer.dir/io/test_stream_writer.cpp.o.d"
  "io_test_stream_writer"
  "io_test_stream_writer.pdb"
  "io_test_stream_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_test_stream_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
