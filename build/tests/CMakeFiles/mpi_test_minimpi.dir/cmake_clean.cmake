file(REMOVE_RECURSE
  "CMakeFiles/mpi_test_minimpi.dir/mpi/test_minimpi.cpp.o"
  "CMakeFiles/mpi_test_minimpi.dir/mpi/test_minimpi.cpp.o.d"
  "mpi_test_minimpi"
  "mpi_test_minimpi.pdb"
  "mpi_test_minimpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_test_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
