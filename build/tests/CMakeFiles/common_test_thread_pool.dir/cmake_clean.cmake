file(REMOVE_RECURSE
  "CMakeFiles/common_test_thread_pool.dir/common/test_thread_pool.cpp.o"
  "CMakeFiles/common_test_thread_pool.dir/common/test_thread_pool.cpp.o.d"
  "common_test_thread_pool"
  "common_test_thread_pool.pdb"
  "common_test_thread_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_thread_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
