# Empty dependencies file for dsp_test_detrend.
# This may be replaced when dependencies are built.
