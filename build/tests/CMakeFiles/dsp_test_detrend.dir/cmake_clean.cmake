file(REMOVE_RECURSE
  "CMakeFiles/dsp_test_detrend.dir/dsp/test_detrend.cpp.o"
  "CMakeFiles/dsp_test_detrend.dir/dsp/test_detrend.cpp.o.d"
  "dsp_test_detrend"
  "dsp_test_detrend.pdb"
  "dsp_test_detrend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test_detrend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
