# Empty compiler generated dependencies file for dsp_test_correlate.
# This may be replaced when dependencies are built.
