file(REMOVE_RECURSE
  "CMakeFiles/dsp_test_correlate.dir/dsp/test_correlate.cpp.o"
  "CMakeFiles/dsp_test_correlate.dir/dsp/test_correlate.cpp.o.d"
  "dsp_test_correlate"
  "dsp_test_correlate.pdb"
  "dsp_test_correlate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test_correlate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
