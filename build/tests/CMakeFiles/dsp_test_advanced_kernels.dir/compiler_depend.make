# Empty compiler generated dependencies file for dsp_test_advanced_kernels.
# This may be replaced when dependencies are built.
