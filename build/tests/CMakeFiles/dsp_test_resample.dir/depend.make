# Empty dependencies file for dsp_test_resample.
# This may be replaced when dependencies are built.
