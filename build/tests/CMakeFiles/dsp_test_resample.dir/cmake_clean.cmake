file(REMOVE_RECURSE
  "CMakeFiles/dsp_test_resample.dir/dsp/test_resample.cpp.o"
  "CMakeFiles/dsp_test_resample.dir/dsp/test_resample.cpp.o.d"
  "dsp_test_resample"
  "dsp_test_resample.pdb"
  "dsp_test_resample[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test_resample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
