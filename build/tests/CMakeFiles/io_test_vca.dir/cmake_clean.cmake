file(REMOVE_RECURSE
  "CMakeFiles/io_test_vca.dir/io/test_vca.cpp.o"
  "CMakeFiles/io_test_vca.dir/io/test_vca.cpp.o.d"
  "io_test_vca"
  "io_test_vca.pdb"
  "io_test_vca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_test_vca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
