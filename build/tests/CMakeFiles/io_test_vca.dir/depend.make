# Empty dependencies file for io_test_vca.
# This may be replaced when dependencies are built.
