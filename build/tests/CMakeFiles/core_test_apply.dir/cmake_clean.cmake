file(REMOVE_RECURSE
  "CMakeFiles/core_test_apply.dir/core/test_apply.cpp.o"
  "CMakeFiles/core_test_apply.dir/core/test_apply.cpp.o.d"
  "core_test_apply"
  "core_test_apply.pdb"
  "core_test_apply[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
