# Empty compiler generated dependencies file for core_test_apply.
# This may be replaced when dependencies are built.
