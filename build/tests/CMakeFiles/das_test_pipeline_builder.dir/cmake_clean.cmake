file(REMOVE_RECURSE
  "CMakeFiles/das_test_pipeline_builder.dir/das/test_pipeline_builder.cpp.o"
  "CMakeFiles/das_test_pipeline_builder.dir/das/test_pipeline_builder.cpp.o.d"
  "das_test_pipeline_builder"
  "das_test_pipeline_builder.pdb"
  "das_test_pipeline_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_test_pipeline_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
