# Empty compiler generated dependencies file for das_test_pipeline_builder.
# This may be replaced when dependencies are built.
