# Empty dependencies file for das_test_channel_qc.
# This may be replaced when dependencies are built.
