file(REMOVE_RECURSE
  "CMakeFiles/das_test_channel_qc.dir/das/test_channel_qc.cpp.o"
  "CMakeFiles/das_test_channel_qc.dir/das/test_channel_qc.cpp.o.d"
  "das_test_channel_qc"
  "das_test_channel_qc.pdb"
  "das_test_channel_qc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_test_channel_qc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
