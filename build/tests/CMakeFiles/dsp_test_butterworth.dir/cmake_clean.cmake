file(REMOVE_RECURSE
  "CMakeFiles/dsp_test_butterworth.dir/dsp/test_butterworth.cpp.o"
  "CMakeFiles/dsp_test_butterworth.dir/dsp/test_butterworth.cpp.o.d"
  "dsp_test_butterworth"
  "dsp_test_butterworth.pdb"
  "dsp_test_butterworth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test_butterworth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
