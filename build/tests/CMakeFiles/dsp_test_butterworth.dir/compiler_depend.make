# Empty compiler generated dependencies file for dsp_test_butterworth.
# This may be replaced when dependencies are built.
