# Empty compiler generated dependencies file for core_test_haee.
# This may be replaced when dependencies are built.
