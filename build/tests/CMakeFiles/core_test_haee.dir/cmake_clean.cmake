file(REMOVE_RECURSE
  "CMakeFiles/core_test_haee.dir/core/test_haee.cpp.o"
  "CMakeFiles/core_test_haee.dir/core/test_haee.cpp.o.d"
  "core_test_haee"
  "core_test_haee.pdb"
  "core_test_haee[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_haee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
