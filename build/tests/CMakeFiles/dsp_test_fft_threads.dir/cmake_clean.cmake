file(REMOVE_RECURSE
  "CMakeFiles/dsp_test_fft_threads.dir/dsp/test_fft_threads.cpp.o"
  "CMakeFiles/dsp_test_fft_threads.dir/dsp/test_fft_threads.cpp.o.d"
  "dsp_test_fft_threads"
  "dsp_test_fft_threads.pdb"
  "dsp_test_fft_threads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test_fft_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
