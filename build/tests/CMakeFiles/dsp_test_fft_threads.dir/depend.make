# Empty dependencies file for dsp_test_fft_threads.
# This may be replaced when dependencies are built.
