file(REMOVE_RECURSE
  "CMakeFiles/integration_test_fault_injection.dir/integration/test_fault_injection.cpp.o"
  "CMakeFiles/integration_test_fault_injection.dir/integration/test_fault_injection.cpp.o.d"
  "integration_test_fault_injection"
  "integration_test_fault_injection.pdb"
  "integration_test_fault_injection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
