# Empty dependencies file for integration_test_fault_injection.
# This may be replaced when dependencies are built.
