# Empty compiler generated dependencies file for das_test_pipelines.
# This may be replaced when dependencies are built.
