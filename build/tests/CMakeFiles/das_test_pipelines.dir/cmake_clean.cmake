file(REMOVE_RECURSE
  "CMakeFiles/das_test_pipelines.dir/das/test_pipelines.cpp.o"
  "CMakeFiles/das_test_pipelines.dir/das/test_pipelines.cpp.o.d"
  "das_test_pipelines"
  "das_test_pipelines.pdb"
  "das_test_pipelines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_test_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
