file(REMOVE_RECURSE
  "CMakeFiles/dsp_test_welch.dir/dsp/test_welch.cpp.o"
  "CMakeFiles/dsp_test_welch.dir/dsp/test_welch.cpp.o.d"
  "dsp_test_welch"
  "dsp_test_welch.pdb"
  "dsp_test_welch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test_welch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
