# Empty compiler generated dependencies file for dsp_test_welch.
# This may be replaced when dependencies are built.
