file(REMOVE_RECURSE
  "CMakeFiles/tools_test_tools_smoke.dir/tools/test_tools_smoke.cpp.o"
  "CMakeFiles/tools_test_tools_smoke.dir/tools/test_tools_smoke.cpp.o.d"
  "tools_test_tools_smoke"
  "tools_test_tools_smoke.pdb"
  "tools_test_tools_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_test_tools_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
