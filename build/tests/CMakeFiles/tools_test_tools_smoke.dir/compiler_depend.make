# Empty compiler generated dependencies file for tools_test_tools_smoke.
# This may be replaced when dependencies are built.
