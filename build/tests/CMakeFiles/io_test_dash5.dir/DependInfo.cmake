
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io/test_dash5.cpp" "tests/CMakeFiles/io_test_dash5.dir/io/test_dash5.cpp.o" "gcc" "tests/CMakeFiles/io_test_dash5.dir/io/test_dash5.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/dassa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/dassa_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dassa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
