file(REMOVE_RECURSE
  "CMakeFiles/io_test_dash5.dir/io/test_dash5.cpp.o"
  "CMakeFiles/io_test_dash5.dir/io/test_dash5.cpp.o.d"
  "io_test_dash5"
  "io_test_dash5.pdb"
  "io_test_dash5[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_test_dash5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
