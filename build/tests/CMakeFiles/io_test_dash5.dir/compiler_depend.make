# Empty compiler generated dependencies file for io_test_dash5.
# This may be replaced when dependencies are built.
