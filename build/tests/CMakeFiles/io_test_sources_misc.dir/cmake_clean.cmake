file(REMOVE_RECURSE
  "CMakeFiles/io_test_sources_misc.dir/io/test_sources_misc.cpp.o"
  "CMakeFiles/io_test_sources_misc.dir/io/test_sources_misc.cpp.o.d"
  "io_test_sources_misc"
  "io_test_sources_misc.pdb"
  "io_test_sources_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_test_sources_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
