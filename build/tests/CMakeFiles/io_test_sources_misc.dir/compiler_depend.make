# Empty compiler generated dependencies file for io_test_sources_misc.
# This may be replaced when dependencies are built.
