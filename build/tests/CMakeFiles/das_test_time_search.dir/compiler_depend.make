# Empty compiler generated dependencies file for das_test_time_search.
# This may be replaced when dependencies are built.
