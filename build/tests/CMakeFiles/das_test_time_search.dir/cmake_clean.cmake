file(REMOVE_RECURSE
  "CMakeFiles/das_test_time_search.dir/das/test_time_search.cpp.o"
  "CMakeFiles/das_test_time_search.dir/das/test_time_search.cpp.o.d"
  "das_test_time_search"
  "das_test_time_search.pdb"
  "das_test_time_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_test_time_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
