file(REMOVE_RECURSE
  "CMakeFiles/dsp_test_filter.dir/dsp/test_filter.cpp.o"
  "CMakeFiles/dsp_test_filter.dir/dsp/test_filter.cpp.o.d"
  "dsp_test_filter"
  "dsp_test_filter.pdb"
  "dsp_test_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
