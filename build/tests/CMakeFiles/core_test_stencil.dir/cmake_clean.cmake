file(REMOVE_RECURSE
  "CMakeFiles/core_test_stencil.dir/core/test_stencil.cpp.o"
  "CMakeFiles/core_test_stencil.dir/core/test_stencil.cpp.o.d"
  "core_test_stencil"
  "core_test_stencil.pdb"
  "core_test_stencil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
