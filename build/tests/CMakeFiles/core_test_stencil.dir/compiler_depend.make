# Empty compiler generated dependencies file for core_test_stencil.
# This may be replaced when dependencies are built.
