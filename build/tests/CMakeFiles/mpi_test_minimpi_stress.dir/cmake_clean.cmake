file(REMOVE_RECURSE
  "CMakeFiles/mpi_test_minimpi_stress.dir/mpi/test_minimpi_stress.cpp.o"
  "CMakeFiles/mpi_test_minimpi_stress.dir/mpi/test_minimpi_stress.cpp.o.d"
  "mpi_test_minimpi_stress"
  "mpi_test_minimpi_stress.pdb"
  "mpi_test_minimpi_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_test_minimpi_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
