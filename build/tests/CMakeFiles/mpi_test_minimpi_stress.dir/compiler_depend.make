# Empty compiler generated dependencies file for mpi_test_minimpi_stress.
# This may be replaced when dependencies are built.
