# Empty compiler generated dependencies file for core_test_autotune.
# This may be replaced when dependencies are built.
