file(REMOVE_RECURSE
  "CMakeFiles/core_test_autotune.dir/core/test_autotune.cpp.o"
  "CMakeFiles/core_test_autotune.dir/core/test_autotune.cpp.o.d"
  "core_test_autotune"
  "core_test_autotune.pdb"
  "core_test_autotune[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
