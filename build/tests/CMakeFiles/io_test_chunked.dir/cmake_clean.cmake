file(REMOVE_RECURSE
  "CMakeFiles/io_test_chunked.dir/io/test_chunked.cpp.o"
  "CMakeFiles/io_test_chunked.dir/io/test_chunked.cpp.o.d"
  "io_test_chunked"
  "io_test_chunked.pdb"
  "io_test_chunked[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_test_chunked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
