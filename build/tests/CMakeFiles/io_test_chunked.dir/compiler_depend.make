# Empty compiler generated dependencies file for io_test_chunked.
# This may be replaced when dependencies are built.
