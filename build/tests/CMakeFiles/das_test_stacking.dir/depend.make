# Empty dependencies file for das_test_stacking.
# This may be replaced when dependencies are built.
