file(REMOVE_RECURSE
  "CMakeFiles/das_test_stacking.dir/das/test_stacking.cpp.o"
  "CMakeFiles/das_test_stacking.dir/das/test_stacking.cpp.o.d"
  "das_test_stacking"
  "das_test_stacking.pdb"
  "das_test_stacking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_test_stacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
