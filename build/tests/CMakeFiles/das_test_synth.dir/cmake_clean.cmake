file(REMOVE_RECURSE
  "CMakeFiles/das_test_synth.dir/das/test_synth.cpp.o"
  "CMakeFiles/das_test_synth.dir/das/test_synth.cpp.o.d"
  "das_test_synth"
  "das_test_synth.pdb"
  "das_test_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_test_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
