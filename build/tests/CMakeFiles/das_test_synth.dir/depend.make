# Empty dependencies file for das_test_synth.
# This may be replaced when dependencies are built.
