# Empty dependencies file for io_test_par_read.
# This may be replaced when dependencies are built.
