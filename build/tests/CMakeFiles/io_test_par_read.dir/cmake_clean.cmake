file(REMOVE_RECURSE
  "CMakeFiles/io_test_par_read.dir/io/test_par_read.cpp.o"
  "CMakeFiles/io_test_par_read.dir/io/test_par_read.cpp.o.d"
  "io_test_par_read"
  "io_test_par_read.pdb"
  "io_test_par_read[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_test_par_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
