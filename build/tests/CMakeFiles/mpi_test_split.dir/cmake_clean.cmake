file(REMOVE_RECURSE
  "CMakeFiles/mpi_test_split.dir/mpi/test_split.cpp.o"
  "CMakeFiles/mpi_test_split.dir/mpi/test_split.cpp.o.d"
  "mpi_test_split"
  "mpi_test_split.pdb"
  "mpi_test_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_test_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
