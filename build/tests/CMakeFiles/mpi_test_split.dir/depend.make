# Empty dependencies file for mpi_test_split.
# This may be replaced when dependencies are built.
