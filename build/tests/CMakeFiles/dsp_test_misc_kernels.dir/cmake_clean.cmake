file(REMOVE_RECURSE
  "CMakeFiles/dsp_test_misc_kernels.dir/dsp/test_misc_kernels.cpp.o"
  "CMakeFiles/dsp_test_misc_kernels.dir/dsp/test_misc_kernels.cpp.o.d"
  "dsp_test_misc_kernels"
  "dsp_test_misc_kernels.pdb"
  "dsp_test_misc_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test_misc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
