# Empty compiler generated dependencies file for dsp_test_misc_kernels.
# This may be replaced when dependencies are built.
