# Empty dependencies file for das_test_events.
# This may be replaced when dependencies are built.
