file(REMOVE_RECURSE
  "CMakeFiles/das_test_events.dir/das/test_events.cpp.o"
  "CMakeFiles/das_test_events.dir/das/test_events.cpp.o.d"
  "das_test_events"
  "das_test_events.pdb"
  "das_test_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_test_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
