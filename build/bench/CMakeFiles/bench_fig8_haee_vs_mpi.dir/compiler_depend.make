# Empty compiler generated dependencies file for bench_fig8_haee_vs_mpi.
# This may be replaced when dependencies are built.
