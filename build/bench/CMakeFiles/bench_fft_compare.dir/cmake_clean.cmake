file(REMOVE_RECURSE
  "CMakeFiles/bench_fft_compare"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench_fft_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
