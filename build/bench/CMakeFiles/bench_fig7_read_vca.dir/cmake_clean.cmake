file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_read_vca.dir/bench_fig7_read_vca.cpp.o"
  "CMakeFiles/bench_fig7_read_vca.dir/bench_fig7_read_vca.cpp.o.d"
  "bench_fig7_read_vca"
  "bench_fig7_read_vca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_read_vca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
