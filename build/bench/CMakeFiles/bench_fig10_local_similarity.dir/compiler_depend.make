# Empty compiler generated dependencies file for bench_fig10_local_similarity.
# This may be replaced when dependencies are built.
