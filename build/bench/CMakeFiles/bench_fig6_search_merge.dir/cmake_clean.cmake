file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_search_merge.dir/bench_fig6_search_merge.cpp.o"
  "CMakeFiles/bench_fig6_search_merge.dir/bench_fig6_search_merge.cpp.o.d"
  "bench_fig6_search_merge"
  "bench_fig6_search_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_search_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
