file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ghost.dir/bench_ablation_ghost.cpp.o"
  "CMakeFiles/bench_ablation_ghost.dir/bench_ablation_ghost.cpp.o.d"
  "bench_ablation_ghost"
  "bench_ablation_ghost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ghost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
