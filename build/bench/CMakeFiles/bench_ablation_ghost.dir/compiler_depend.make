# Empty compiler generated dependencies file for bench_ablation_ghost.
# This may be replaced when dependencies are built.
