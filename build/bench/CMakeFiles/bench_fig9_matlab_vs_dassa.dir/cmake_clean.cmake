file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_matlab_vs_dassa.dir/bench_fig9_matlab_vs_dassa.cpp.o"
  "CMakeFiles/bench_fig9_matlab_vs_dassa.dir/bench_fig9_matlab_vs_dassa.cpp.o.d"
  "bench_fig9_matlab_vs_dassa"
  "bench_fig9_matlab_vs_dassa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_matlab_vs_dassa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
