# Empty compiler generated dependencies file for bench_fig9_matlab_vs_dassa.
# This may be replaced when dependencies are built.
