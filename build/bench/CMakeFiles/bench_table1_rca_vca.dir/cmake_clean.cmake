file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rca_vca.dir/bench_table1_rca_vca.cpp.o"
  "CMakeFiles/bench_table1_rca_vca.dir/bench_table1_rca_vca.cpp.o.d"
  "bench_table1_rca_vca"
  "bench_table1_rca_vca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rca_vca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
