
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_rca_vca.cpp" "bench/CMakeFiles/bench_table1_rca_vca.dir/bench_table1_rca_vca.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_rca_vca.dir/bench_table1_rca_vca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/das/CMakeFiles/dassa_das.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dassa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dassa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/dassa_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/dassa_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dassa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
