# Empty compiler generated dependencies file for bench_table1_rca_vca.
# This may be replaced when dependencies are built.
