# Empty dependencies file for das_analyze.
# This may be replaced when dependencies are built.
