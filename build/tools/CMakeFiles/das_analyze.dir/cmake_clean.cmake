file(REMOVE_RECURSE
  "CMakeFiles/das_analyze.dir/das_analyze.cpp.o"
  "CMakeFiles/das_analyze.dir/das_analyze.cpp.o.d"
  "das_analyze"
  "das_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
