file(REMOVE_RECURSE
  "CMakeFiles/das_generate.dir/das_generate.cpp.o"
  "CMakeFiles/das_generate.dir/das_generate.cpp.o.d"
  "das_generate"
  "das_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
