# Empty dependencies file for das_generate.
# This may be replaced when dependencies are built.
