# Empty compiler generated dependencies file for das_search.
# This may be replaced when dependencies are built.
