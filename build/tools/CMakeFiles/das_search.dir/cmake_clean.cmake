file(REMOVE_RECURSE
  "CMakeFiles/das_search.dir/das_search.cpp.o"
  "CMakeFiles/das_search.dir/das_search.cpp.o.d"
  "das_search"
  "das_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
