file(REMOVE_RECURSE
  "CMakeFiles/das_info.dir/das_info.cpp.o"
  "CMakeFiles/das_info.dir/das_info.cpp.o.d"
  "das_info"
  "das_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
