# Empty compiler generated dependencies file for das_info.
# This may be replaced when dependencies are built.
