# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_earthquake_detection "/root/repo/build/examples/earthquake_detection")
set_tests_properties(example_earthquake_detection PROPERTIES  TIMEOUT "600" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_traffic_noise_interferometry "/root/repo/build/examples/traffic_noise_interferometry")
set_tests_properties(example_traffic_noise_interferometry PROPERTIES  TIMEOUT "600" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vca_merge_demo "/root/repo/build/examples/vca_merge_demo")
set_tests_properties(example_vca_merge_demo PROPERTIES  TIMEOUT "600" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autotune_demo "/root/repo/build/examples/autotune_demo")
set_tests_properties(example_autotune_demo PROPERTIES  TIMEOUT "600" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_plasma_domains "/root/repo/build/examples/plasma_domains")
set_tests_properties(example_plasma_domains PROPERTIES  TIMEOUT "600" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_advanced_workflow "/root/repo/build/examples/advanced_workflow")
set_tests_properties(example_advanced_workflow PROPERTIES  TIMEOUT "600" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
