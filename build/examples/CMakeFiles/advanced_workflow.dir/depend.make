# Empty dependencies file for advanced_workflow.
# This may be replaced when dependencies are built.
