file(REMOVE_RECURSE
  "CMakeFiles/advanced_workflow.dir/advanced_workflow.cpp.o"
  "CMakeFiles/advanced_workflow.dir/advanced_workflow.cpp.o.d"
  "advanced_workflow"
  "advanced_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
