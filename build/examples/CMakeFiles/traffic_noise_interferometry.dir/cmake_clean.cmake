file(REMOVE_RECURSE
  "CMakeFiles/traffic_noise_interferometry.dir/traffic_noise_interferometry.cpp.o"
  "CMakeFiles/traffic_noise_interferometry.dir/traffic_noise_interferometry.cpp.o.d"
  "traffic_noise_interferometry"
  "traffic_noise_interferometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_noise_interferometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
