# Empty compiler generated dependencies file for traffic_noise_interferometry.
# This may be replaced when dependencies are built.
