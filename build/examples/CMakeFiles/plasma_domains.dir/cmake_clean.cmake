file(REMOVE_RECURSE
  "CMakeFiles/plasma_domains.dir/plasma_domains.cpp.o"
  "CMakeFiles/plasma_domains.dir/plasma_domains.cpp.o.d"
  "plasma_domains"
  "plasma_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plasma_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
