# Empty dependencies file for plasma_domains.
# This may be replaced when dependencies are built.
