# Empty compiler generated dependencies file for vca_merge_demo.
# This may be replaced when dependencies are built.
