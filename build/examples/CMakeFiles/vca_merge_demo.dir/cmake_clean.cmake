file(REMOVE_RECURSE
  "CMakeFiles/vca_merge_demo.dir/vca_merge_demo.cpp.o"
  "CMakeFiles/vca_merge_demo.dir/vca_merge_demo.cpp.o.d"
  "vca_merge_demo"
  "vca_merge_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vca_merge_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
