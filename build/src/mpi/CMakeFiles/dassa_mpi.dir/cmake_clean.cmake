file(REMOVE_RECURSE
  "CMakeFiles/dassa_mpi.dir/comm.cpp.o"
  "CMakeFiles/dassa_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/dassa_mpi.dir/runtime.cpp.o"
  "CMakeFiles/dassa_mpi.dir/runtime.cpp.o.d"
  "CMakeFiles/dassa_mpi.dir/world.cpp.o"
  "CMakeFiles/dassa_mpi.dir/world.cpp.o.d"
  "libdassa_mpi.a"
  "libdassa_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dassa_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
