# Empty compiler generated dependencies file for dassa_mpi.
# This may be replaced when dependencies are built.
