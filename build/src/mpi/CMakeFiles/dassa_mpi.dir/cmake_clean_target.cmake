file(REMOVE_RECURSE
  "libdassa_mpi.a"
)
