# Empty dependencies file for dassa_core.
# This may be replaced when dependencies are built.
