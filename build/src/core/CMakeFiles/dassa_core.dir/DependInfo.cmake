
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apply.cpp" "src/core/CMakeFiles/dassa_core.dir/apply.cpp.o" "gcc" "src/core/CMakeFiles/dassa_core.dir/apply.cpp.o.d"
  "/root/repo/src/core/autotune.cpp" "src/core/CMakeFiles/dassa_core.dir/autotune.cpp.o" "gcc" "src/core/CMakeFiles/dassa_core.dir/autotune.cpp.o.d"
  "/root/repo/src/core/haee.cpp" "src/core/CMakeFiles/dassa_core.dir/haee.cpp.o" "gcc" "src/core/CMakeFiles/dassa_core.dir/haee.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dassa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/dassa_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dassa_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
