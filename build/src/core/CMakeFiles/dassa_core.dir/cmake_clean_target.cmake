file(REMOVE_RECURSE
  "libdassa_core.a"
)
