file(REMOVE_RECURSE
  "CMakeFiles/dassa_core.dir/apply.cpp.o"
  "CMakeFiles/dassa_core.dir/apply.cpp.o.d"
  "CMakeFiles/dassa_core.dir/autotune.cpp.o"
  "CMakeFiles/dassa_core.dir/autotune.cpp.o.d"
  "CMakeFiles/dassa_core.dir/haee.cpp.o"
  "CMakeFiles/dassa_core.dir/haee.cpp.o.d"
  "libdassa_core.a"
  "libdassa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dassa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
