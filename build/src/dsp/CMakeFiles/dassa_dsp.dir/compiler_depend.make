# Empty compiler generated dependencies file for dassa_dsp.
# This may be replaced when dependencies are built.
