file(REMOVE_RECURSE
  "CMakeFiles/dassa_dsp.dir/butterworth.cpp.o"
  "CMakeFiles/dassa_dsp.dir/butterworth.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/correlate.cpp.o"
  "CMakeFiles/dassa_dsp.dir/correlate.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/detrend.cpp.o"
  "CMakeFiles/dassa_dsp.dir/detrend.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/fft.cpp.o"
  "CMakeFiles/dassa_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/filter.cpp.o"
  "CMakeFiles/dassa_dsp.dir/filter.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/hilbert.cpp.o"
  "CMakeFiles/dassa_dsp.dir/hilbert.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/interp.cpp.o"
  "CMakeFiles/dassa_dsp.dir/interp.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/median.cpp.o"
  "CMakeFiles/dassa_dsp.dir/median.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/moving.cpp.o"
  "CMakeFiles/dassa_dsp.dir/moving.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/resample.cpp.o"
  "CMakeFiles/dassa_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/sta_lta.cpp.o"
  "CMakeFiles/dassa_dsp.dir/sta_lta.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/stft.cpp.o"
  "CMakeFiles/dassa_dsp.dir/stft.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/welch.cpp.o"
  "CMakeFiles/dassa_dsp.dir/welch.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/whiten.cpp.o"
  "CMakeFiles/dassa_dsp.dir/whiten.cpp.o.d"
  "CMakeFiles/dassa_dsp.dir/window.cpp.o"
  "CMakeFiles/dassa_dsp.dir/window.cpp.o.d"
  "libdassa_dsp.a"
  "libdassa_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dassa_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
