
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/butterworth.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/butterworth.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/butterworth.cpp.o.d"
  "/root/repo/src/dsp/correlate.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/correlate.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/correlate.cpp.o.d"
  "/root/repo/src/dsp/detrend.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/detrend.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/detrend.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/filter.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/filter.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/filter.cpp.o.d"
  "/root/repo/src/dsp/hilbert.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/hilbert.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/hilbert.cpp.o.d"
  "/root/repo/src/dsp/interp.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/interp.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/interp.cpp.o.d"
  "/root/repo/src/dsp/median.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/median.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/median.cpp.o.d"
  "/root/repo/src/dsp/moving.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/moving.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/moving.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/resample.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/resample.cpp.o.d"
  "/root/repo/src/dsp/sta_lta.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/sta_lta.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/sta_lta.cpp.o.d"
  "/root/repo/src/dsp/stats.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/stats.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/stats.cpp.o.d"
  "/root/repo/src/dsp/stft.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/stft.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/stft.cpp.o.d"
  "/root/repo/src/dsp/welch.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/welch.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/welch.cpp.o.d"
  "/root/repo/src/dsp/whiten.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/whiten.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/whiten.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/dassa_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/dassa_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dassa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
