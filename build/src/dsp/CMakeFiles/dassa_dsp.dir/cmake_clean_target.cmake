file(REMOVE_RECURSE
  "libdassa_dsp.a"
)
