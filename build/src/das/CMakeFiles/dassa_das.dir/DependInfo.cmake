
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/das/baseline.cpp" "src/das/CMakeFiles/dassa_das.dir/baseline.cpp.o" "gcc" "src/das/CMakeFiles/dassa_das.dir/baseline.cpp.o.d"
  "/root/repo/src/das/channel_qc.cpp" "src/das/CMakeFiles/dassa_das.dir/channel_qc.cpp.o" "gcc" "src/das/CMakeFiles/dassa_das.dir/channel_qc.cpp.o.d"
  "/root/repo/src/das/events.cpp" "src/das/CMakeFiles/dassa_das.dir/events.cpp.o" "gcc" "src/das/CMakeFiles/dassa_das.dir/events.cpp.o.d"
  "/root/repo/src/das/interferometry.cpp" "src/das/CMakeFiles/dassa_das.dir/interferometry.cpp.o" "gcc" "src/das/CMakeFiles/dassa_das.dir/interferometry.cpp.o.d"
  "/root/repo/src/das/local_similarity.cpp" "src/das/CMakeFiles/dassa_das.dir/local_similarity.cpp.o" "gcc" "src/das/CMakeFiles/dassa_das.dir/local_similarity.cpp.o.d"
  "/root/repo/src/das/pipeline.cpp" "src/das/CMakeFiles/dassa_das.dir/pipeline.cpp.o" "gcc" "src/das/CMakeFiles/dassa_das.dir/pipeline.cpp.o.d"
  "/root/repo/src/das/search.cpp" "src/das/CMakeFiles/dassa_das.dir/search.cpp.o" "gcc" "src/das/CMakeFiles/dassa_das.dir/search.cpp.o.d"
  "/root/repo/src/das/stacking.cpp" "src/das/CMakeFiles/dassa_das.dir/stacking.cpp.o" "gcc" "src/das/CMakeFiles/dassa_das.dir/stacking.cpp.o.d"
  "/root/repo/src/das/synth.cpp" "src/das/CMakeFiles/dassa_das.dir/synth.cpp.o" "gcc" "src/das/CMakeFiles/dassa_das.dir/synth.cpp.o.d"
  "/root/repo/src/das/time.cpp" "src/das/CMakeFiles/dassa_das.dir/time.cpp.o" "gcc" "src/das/CMakeFiles/dassa_das.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dassa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/dassa_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dassa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dassa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/dassa_mpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
