file(REMOVE_RECURSE
  "CMakeFiles/dassa_das.dir/baseline.cpp.o"
  "CMakeFiles/dassa_das.dir/baseline.cpp.o.d"
  "CMakeFiles/dassa_das.dir/channel_qc.cpp.o"
  "CMakeFiles/dassa_das.dir/channel_qc.cpp.o.d"
  "CMakeFiles/dassa_das.dir/events.cpp.o"
  "CMakeFiles/dassa_das.dir/events.cpp.o.d"
  "CMakeFiles/dassa_das.dir/interferometry.cpp.o"
  "CMakeFiles/dassa_das.dir/interferometry.cpp.o.d"
  "CMakeFiles/dassa_das.dir/local_similarity.cpp.o"
  "CMakeFiles/dassa_das.dir/local_similarity.cpp.o.d"
  "CMakeFiles/dassa_das.dir/pipeline.cpp.o"
  "CMakeFiles/dassa_das.dir/pipeline.cpp.o.d"
  "CMakeFiles/dassa_das.dir/search.cpp.o"
  "CMakeFiles/dassa_das.dir/search.cpp.o.d"
  "CMakeFiles/dassa_das.dir/stacking.cpp.o"
  "CMakeFiles/dassa_das.dir/stacking.cpp.o.d"
  "CMakeFiles/dassa_das.dir/synth.cpp.o"
  "CMakeFiles/dassa_das.dir/synth.cpp.o.d"
  "CMakeFiles/dassa_das.dir/time.cpp.o"
  "CMakeFiles/dassa_das.dir/time.cpp.o.d"
  "libdassa_das.a"
  "libdassa_das.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dassa_das.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
