# Empty compiler generated dependencies file for dassa_das.
# This may be replaced when dependencies are built.
