file(REMOVE_RECURSE
  "libdassa_das.a"
)
