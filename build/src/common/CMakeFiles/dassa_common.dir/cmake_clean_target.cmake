file(REMOVE_RECURSE
  "libdassa_common.a"
)
