file(REMOVE_RECURSE
  "CMakeFiles/dassa_common.dir/counters.cpp.o"
  "CMakeFiles/dassa_common.dir/counters.cpp.o.d"
  "CMakeFiles/dassa_common.dir/error.cpp.o"
  "CMakeFiles/dassa_common.dir/error.cpp.o.d"
  "CMakeFiles/dassa_common.dir/log.cpp.o"
  "CMakeFiles/dassa_common.dir/log.cpp.o.d"
  "CMakeFiles/dassa_common.dir/thread_pool.cpp.o"
  "CMakeFiles/dassa_common.dir/thread_pool.cpp.o.d"
  "libdassa_common.a"
  "libdassa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dassa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
