# Empty compiler generated dependencies file for dassa_common.
# This may be replaced when dependencies are built.
