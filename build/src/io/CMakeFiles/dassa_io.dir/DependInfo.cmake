
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/dash5.cpp" "src/io/CMakeFiles/dassa_io.dir/dash5.cpp.o" "gcc" "src/io/CMakeFiles/dassa_io.dir/dash5.cpp.o.d"
  "/root/repo/src/io/file_io.cpp" "src/io/CMakeFiles/dassa_io.dir/file_io.cpp.o" "gcc" "src/io/CMakeFiles/dassa_io.dir/file_io.cpp.o.d"
  "/root/repo/src/io/kv.cpp" "src/io/CMakeFiles/dassa_io.dir/kv.cpp.o" "gcc" "src/io/CMakeFiles/dassa_io.dir/kv.cpp.o.d"
  "/root/repo/src/io/par_read.cpp" "src/io/CMakeFiles/dassa_io.dir/par_read.cpp.o" "gcc" "src/io/CMakeFiles/dassa_io.dir/par_read.cpp.o.d"
  "/root/repo/src/io/par_write.cpp" "src/io/CMakeFiles/dassa_io.dir/par_write.cpp.o" "gcc" "src/io/CMakeFiles/dassa_io.dir/par_write.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/io/CMakeFiles/dassa_io.dir/serialize.cpp.o" "gcc" "src/io/CMakeFiles/dassa_io.dir/serialize.cpp.o.d"
  "/root/repo/src/io/vca.cpp" "src/io/CMakeFiles/dassa_io.dir/vca.cpp.o" "gcc" "src/io/CMakeFiles/dassa_io.dir/vca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dassa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/dassa_mpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
