file(REMOVE_RECURSE
  "libdassa_io.a"
)
