file(REMOVE_RECURSE
  "CMakeFiles/dassa_io.dir/dash5.cpp.o"
  "CMakeFiles/dassa_io.dir/dash5.cpp.o.d"
  "CMakeFiles/dassa_io.dir/file_io.cpp.o"
  "CMakeFiles/dassa_io.dir/file_io.cpp.o.d"
  "CMakeFiles/dassa_io.dir/kv.cpp.o"
  "CMakeFiles/dassa_io.dir/kv.cpp.o.d"
  "CMakeFiles/dassa_io.dir/par_read.cpp.o"
  "CMakeFiles/dassa_io.dir/par_read.cpp.o.d"
  "CMakeFiles/dassa_io.dir/par_write.cpp.o"
  "CMakeFiles/dassa_io.dir/par_write.cpp.o.d"
  "CMakeFiles/dassa_io.dir/serialize.cpp.o"
  "CMakeFiles/dassa_io.dir/serialize.cpp.o.d"
  "CMakeFiles/dassa_io.dir/vca.cpp.o"
  "CMakeFiles/dassa_io.dir/vca.cpp.o.d"
  "libdassa_io.a"
  "libdassa_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dassa_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
