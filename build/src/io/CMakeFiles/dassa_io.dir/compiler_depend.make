# Empty compiler generated dependencies file for dassa_io.
# This may be replaced when dependencies are built.
