#!/usr/bin/env bash
# DASSA correctness harness driver (docs/ANALYSIS.md).
#
# Runs the full static/dynamic-analysis matrix from a clean tree:
#
#   1. strict   -- -Wall -Wextra -Wconversion ... as errors, plus
#                  DASSA_DEBUG_BOUNDS checked accessors; full ctest.
#   2. asan     -- AddressSanitizer + UndefinedBehaviorSanitizer build;
#                  full ctest with leak detection, then a long
#                  deterministic fuzz run (>= 10000 inputs).
#   3. tsan     -- ThreadSanitizer build; concurrency-relevant tests
#                  (ThreadPool, FFT engine, MiniMPI, HAEE stress).
#   4. lint     -- tools/das_lint.py over src/, include/ and tools/
#                  (zero findings against the committed baseline).
#   5. telemetry-- das_analyze --telemetry on a 4-rank synthetic run,
#                  validated and rendered by das_health.
#   6. bench    -- bench_compare.py perf-regression gate (optional,
#                  skipped with --no-bench; needs the default build).
#
# Each matrix leg uses its CMakePresets.json preset, so every leg can
# also be run by hand:  cmake --preset asan && cmake --build --preset
# asan && ctest --preset asan.
#
# Usage: scripts/check.sh [--no-bench] [--fuzz-iters N] [--jobs N]
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=1
FUZZ_ITERS=10000
JOBS="$(nproc)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --no-bench) RUN_BENCH=0 ;;
    --fuzz-iters) FUZZ_ITERS="$2"; shift ;;
    --jobs) JOBS="$2"; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

step() { printf '\n==== %s ====\n' "$*"; }

# ---------------------------------------------------------------- lint
# First: it needs no build and fails fastest.
step "das_lint (src/ + include/ + tools/ invariants)"
python3 tools/das_lint.py --repo .

# -------------------------------------------------------------- strict
step "strict: warnings-as-errors + DASSA_DEBUG_BOUNDS"
cmake --preset strict
cmake --build --preset strict -j "${JOBS}"
ctest --preset strict -j "${JOBS}"

# The codec suite runs again with the SIMD dispatcher pinned to the
# scalar kernels: every machine exercises the portable fallback path,
# not just hosts without SSE2/AVX2/NEON.
step "strict: codec + SIMD suite with DASSA_SIMD=scalar"
DASSA_SIMD=scalar ctest --preset strict -j "${JOBS}" \
  -R 'Codec|Simd|Dash5V3|Repack'

# ---------------------------------------------------------------- asan
step "asan: AddressSanitizer + UBSan, full suite"
cmake --preset asan
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}"

step "asan: deterministic parser fuzz (${FUZZ_ITERS} inputs)"
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$PWD/scripts/ubsan.supp" \
  ./build-asan/tests/tools/fuzz_dash5 --iters "${FUZZ_ITERS}" --seed 20260806

# ---------------------------------------------------------------- tsan
# Concurrency-relevant subset: the pool, the FFT engine's shared plan
# cache, MiniMPI collectives, the HAEE row-apply stress tests, the
# storage engine (parallel chunk codecs, sharded chunk cache, prefetch,
# the multi-rank repack concatenator), the SIMD dispatch layer, the
# span tracer (concurrent emission vs collection), and the telemetry
# sampler (background thread vs counter/histogram/gauge writers).
step "tsan: ThreadSanitizer, concurrency suite"
cmake --preset tsan
cmake --build --preset tsan -j "${JOBS}"
ctest --preset tsan -j "${JOBS}" \
  -R 'ThreadPool|Fft|MiniMpi|HaeeStress|HaeeMode|Apply|Codec|ChunkCache|Dash5V3|Trace|Telemetry|Repack|Simd'

# ---------------------------------------------------------- telemetry
# End-to-end observability smoke: generate a tiny acquisition, run the
# analysis pipeline on 4 ranks with telemetry sampling, then make
# das_health validate and render the resulting JSONL.
step "telemetry: das_analyze --telemetry -> das_health round trip"
cmake --preset default
cmake --build --preset default -j "${JOBS}" \
  --target das_generate das_analyze das_health
TELEDIR="$(mktemp -d)"
trap 'rm -rf "${TELEDIR}"' EXIT
./build/tools/das_generate --dir "${TELEDIR}" --channels 16 --rate 20 \
  --files 2 --seconds-per-file 2 --start 170728224510
./build/tools/das_analyze --dir "${TELEDIR}" --pipeline similarity \
  --window-half 4 --lag-half 2 --nodes 4 \
  --telemetry "${TELEDIR}/run.telemetry.jsonl" --telemetry-period-ms 5 \
  --out "${TELEDIR}/out.dh5" > /dev/null
./build/tools/das_health "${TELEDIR}/run.telemetry.jsonl" --validate-only
./build/tools/das_health "${TELEDIR}/run.telemetry.jsonl" > /dev/null

# --------------------------------------------------------------- bench
if [[ "${RUN_BENCH}" -eq 1 ]]; then
  step "bench: FFT-stack perf-regression gate"
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" --target bench_micro_dsp
  python3 bench/bench_compare.py --bench-bin build/bench/bench_micro_dsp

  step "bench: storage codec + chunk-cache gate (BENCH_codec.json)"
  cmake --build --preset default -j "${JOBS}" --target bench_codec
  ./build/bench/bench_codec --check
fi

step "all checks passed"
