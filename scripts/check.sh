#!/usr/bin/env bash
# DASSA correctness harness driver (docs/ANALYSIS.md).
#
# Runs the full static/dynamic-analysis matrix from a clean tree:
#
#   1. lint        -- tools/das_lint.py over src/, include/ and tools/
#                     (zero findings against the committed baseline),
#                     plus the linter's own fixture self-test.
#   2. strict      -- -Wall -Wextra -Wconversion ... as errors, plus
#                     DASSA_DEBUG_BOUNDS checked accessors; full ctest,
#                     then the codec/SIMD subset re-run with the
#                     dispatcher pinned to scalar kernels.
#   3. asan        -- AddressSanitizer + UndefinedBehaviorSanitizer
#                     build; full ctest with leak detection, then a long
#                     deterministic fuzz run (>= 10000 inputs).
#   4. tsan        -- ThreadSanitizer build; concurrency-relevant tests
#                     (ThreadPool, FFT engine, MiniMPI, HAEE stress,
#                     storage engine, tracer, telemetry sampler).
#   5. telemetry   -- das_analyze --telemetry on a 4-rank synthetic run,
#                     validated and rendered by das_health.
#   6. bench       -- bench_compare.py + bench_codec perf-regression
#                     gates (optional, skipped with --no-bench).
#
# With --clang, two additional legs run (and the script FAILS with exit
# 3 if clang/clang++/clang-tidy are not on PATH -- a requested leg that
# cannot run is an error, never a silent skip):
#
#   7. clang-strict-- Clang build with -Wthread-safety(-beta) as errors
#                     over the annotated dassa::Mutex/CondVar wrappers;
#                     full ctest including the try_compile compile-fail
#                     suite (bad fixtures must be rejected).
#   8. clang-tidy  -- curated .clang-tidy profile, per-check warning
#                     counts ratcheted against tools/clang_tidy_baseline
#                     by scripts/clang_tidy_check.py.
#
# Each matrix leg uses its CMakePresets.json preset, so every leg can
# also be run by hand:  cmake --preset asan && cmake --build --preset
# asan && ctest --preset asan.
#
# A per-leg wall-clock summary table prints on exit (success or
# failure), so slow legs are visible and a failed run shows exactly how
# far it got.
#
# Usage: scripts/check.sh [--no-bench] [--clang] [--fuzz-iters N] [--jobs N]
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=1
RUN_CLANG=0
FUZZ_ITERS=10000
JOBS="$(nproc)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --no-bench) RUN_BENCH=0 ;;
    --clang) RUN_CLANG=1 ;;
    --fuzz-iters) FUZZ_ITERS="$2"; shift ;;
    --jobs) JOBS="$2"; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

EXIT_TOOLCHAIN_MISSING=3

step() { printf '\n==== %s ====\n' "$*"; }

# ------------------------------------------------- summary bookkeeping
SUMMARY_NAMES=()
SUMMARY_SECS=()
SUMMARY_STATUS=()
CURRENT_LEG=""
CURRENT_LEG_START=0
TELEDIR=""

print_summary() {
  local rc=$?
  [[ -n "${TELEDIR}" ]] && rm -rf "${TELEDIR}"
  # A leg that was running when the script died is recorded as FAIL.
  if [[ -n "${CURRENT_LEG}" ]]; then
    SUMMARY_NAMES+=("${CURRENT_LEG}")
    SUMMARY_SECS+=($(( SECONDS - CURRENT_LEG_START )))
    SUMMARY_STATUS+=("FAIL")
  fi
  if [[ ${#SUMMARY_NAMES[@]} -gt 0 ]]; then
    printf '\n==== leg summary ====\n'
    printf '%-14s %8s  %s\n' "leg" "wall(s)" "status"
    local i total=0
    for i in "${!SUMMARY_NAMES[@]}"; do
      printf '%-14s %8d  %s\n' \
        "${SUMMARY_NAMES[$i]}" "${SUMMARY_SECS[$i]}" "${SUMMARY_STATUS[$i]}"
      total=$(( total + SUMMARY_SECS[i] ))
    done
    printf '%-14s %8d\n' "total" "${total}"
  fi
  exit "${rc}"
}
trap print_summary EXIT

run_leg() {
  local name="$1"
  CURRENT_LEG="${name}"
  CURRENT_LEG_START=${SECONDS}
  "leg_${name}"
  SUMMARY_NAMES+=("${name}")
  SUMMARY_SECS+=($(( SECONDS - CURRENT_LEG_START )))
  SUMMARY_STATUS+=("ok")
  CURRENT_LEG=""
}

# ------------------------------------------------------ toolchain probe
# Requested legs whose toolchain is absent fail the whole run up front
# (exit 3), before any build time is spent.
if [[ "${RUN_CLANG}" -eq 1 ]]; then
  missing=()
  for tool in clang clang++ clang-tidy; do
    command -v "${tool}" > /dev/null 2>&1 || missing+=("${tool}")
  done
  if [[ ${#missing[@]} -gt 0 ]]; then
    echo "check.sh: --clang requested but missing toolchain: ${missing[*]}" >&2
    echo "check.sh: install LLVM/Clang or drop --clang" >&2
    exit "${EXIT_TOOLCHAIN_MISSING}"
  fi
fi

# ---------------------------------------------------------------- legs
leg_lint() {
  # First: it needs no build and fails fastest.
  step "das_lint (src/ + include/ + tools/ invariants)"
  python3 tools/das_lint.py --repo .
  step "das_lint --self-test (rule fixtures)"
  python3 tools/das_lint.py --self-test
}

leg_strict() {
  step "strict: warnings-as-errors + DASSA_DEBUG_BOUNDS"
  cmake --preset strict
  cmake --build --preset strict -j "${JOBS}"
  ctest --preset strict -j "${JOBS}"

  # The codec suite runs again with the SIMD dispatcher pinned to the
  # scalar kernels: every machine exercises the portable fallback path,
  # not just hosts without SSE2/AVX2/NEON.
  step "strict: codec + SIMD suite with DASSA_SIMD=scalar"
  DASSA_SIMD=scalar ctest --preset strict -j "${JOBS}" \
    -R 'Codec|Simd|Dash5V3|Repack'
}

leg_asan() {
  step "asan: AddressSanitizer + UBSan, full suite"
  cmake --preset asan
  cmake --build --preset asan -j "${JOBS}"
  ctest --preset asan -j "${JOBS}"

  step "asan: deterministic parser fuzz (${FUZZ_ITERS} inputs)"
  ASAN_OPTIONS=detect_leaks=1 \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$PWD/scripts/ubsan.supp" \
    ./build-asan/tests/tools/fuzz_dash5 --iters "${FUZZ_ITERS}" --seed 20260806
}

leg_tsan() {
  # Concurrency-relevant subset: the pool, the FFT engine's shared plan
  # cache, MiniMPI collectives, the HAEE row-apply stress tests, the
  # storage engine (parallel chunk codecs, sharded chunk cache,
  # prefetch, the multi-rank repack concatenator), the SIMD dispatch
  # layer, the span tracer (concurrent emission vs collection), the
  # telemetry sampler (background thread vs counter/histogram/gauge
  # writers), the ingest admission queue (blocking producers vs the
  # draining consumer), and the query server (concurrent clients vs the
  # coalescing dispatcher, worker pool, mid-request shutdown drain).
  step "tsan: ThreadSanitizer, concurrency suite"
  cmake --preset tsan
  cmake --build --preset tsan -j "${JOBS}"
  ctest --preset tsan -j "${JOBS}" \
    -R 'ThreadPool|Fft|MiniMpi|HaeeStress|HaeeMode|Apply|Codec|ChunkCache|Dash5V3|Trace|Telemetry|Repack|Simd|Ingest|Serve|Stats|MetricsDiff'
}

leg_telemetry() {
  # End-to-end observability smoke: generate a tiny acquisition, run
  # the analysis pipeline on 4 ranks with telemetry sampling, then make
  # das_health validate and render the resulting JSONL.
  step "telemetry: das_analyze --telemetry -> das_health round trip"
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" \
    --target das_generate das_analyze das_health
  TELEDIR="$(mktemp -d)"
  ./build/tools/das_generate --dir "${TELEDIR}" --channels 16 --rate 20 \
    --files 2 --seconds-per-file 2 --start 170728224510
  ./build/tools/das_analyze --dir "${TELEDIR}" --pipeline similarity \
    --window-half 4 --lag-half 2 --nodes 4 \
    --telemetry "${TELEDIR}/run.telemetry.jsonl" --telemetry-period-ms 5 \
    --out "${TELEDIR}/out.dh5" > /dev/null
  ./build/tools/das_health "${TELEDIR}/run.telemetry.jsonl" --validate-only
  ./build/tools/das_health "${TELEDIR}/run.telemetry.jsonl" > /dev/null

  # Live introspection smoke: a das_serve daemon, das_top polling its
  # kStats over the socket (human view and Prometheus exposition), and
  # a SIGUSR1 mid-run telemetry flush validated by das_health.
  step "telemetry: live kStats -> das_top + SIGUSR1 flush"
  cmake --build --preset default -j "${JOBS}" --target das_serve das_top
  local serve_sock="${TELEDIR}/serve.sock"
  ./build/tools/das_serve --socket "${serve_sock}" \
    --archive "${TELEDIR}/out.dh5" \
    --telemetry "${TELEDIR}/serve.telemetry.jsonl" > /dev/null &
  local serve_pid=$!
  local i
  for i in $(seq 1 100); do
    [[ -S "${serve_sock}" ]] && break
    sleep 0.1
  done
  [[ -S "${serve_sock}" ]]
  ./build/tools/das_top --socket "${serve_sock}" --once \
    | grep -q '^das_top'
  ./build/tools/das_top --socket "${serve_sock}" --once --prom \
    | grep -q '^dassa_stats_requests_total'
  kill -USR1 "${serve_pid}"
  local flushed=0
  for i in $(seq 1 100); do
    if ./build/tools/das_health "${TELEDIR}/serve.telemetry.jsonl" \
        --validate-only > /dev/null 2>&1; then
      flushed=1
      break
    fi
    sleep 0.1
  done
  [[ "${flushed}" -eq 1 ]]
  kill "${serve_pid}"
  wait "${serve_pid}"
  rm -rf "${TELEDIR}"
  TELEDIR=""
}

leg_clang_strict() {
  # Clang thread-safety analysis as errors over the annotated
  # dassa::Mutex / SharedMutex / CondVar wrappers, plus the
  # compile-fail suite proving the analysis still rejects each
  # violation class (and accepts the corrected twins).
  step "clang-strict: -Wthread-safety(-beta) as errors, full ctest"
  cmake --preset clang-strict
  cmake --build --preset clang-strict -j "${JOBS}"
  ctest --preset clang-strict -j "${JOBS}"
}

leg_clang_tidy() {
  step "clang-tidy: curated profile, per-check ratchet"
  cmake --preset clang-tidy
  python3 scripts/clang_tidy_check.py --jobs "${JOBS}"
}

leg_bench() {
  step "bench: FFT-stack perf-regression gate"
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" --target bench_micro_dsp
  python3 bench/bench_compare.py --bench-bin build/bench/bench_micro_dsp

  step "bench: storage codec + chunk-cache gate (BENCH_codec.json)"
  cmake --build --preset default -j "${JOBS}" --target bench_codec
  ./build/bench/bench_codec --check

  step "bench: streaming ingest latency gate (BENCH_ingest.json)"
  cmake --build --preset default -j "${JOBS}" --target bench_ingest
  python3 bench/bench_compare.py --ingest-bin build/bench/bench_ingest

  step "bench: query-serving shared-decode gate (BENCH_serve.json)"
  cmake --build --preset default -j "${JOBS}" --target bench_serve
  python3 bench/bench_compare.py --serve-bin build/bench/bench_serve
}

# --------------------------------------------------------------- drive
run_leg lint
run_leg strict
run_leg asan
run_leg tsan
run_leg telemetry
if [[ "${RUN_CLANG}" -eq 1 ]]; then
  run_leg clang_strict
  run_leg clang_tidy
fi
if [[ "${RUN_BENCH}" -eq 1 ]]; then
  run_leg bench
fi

step "all checks passed"
