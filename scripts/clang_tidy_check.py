#!/usr/bin/env python3
"""clang_tidy_check: run clang-tidy over the library sources and ratchet
the per-check warning counts against tools/clang_tidy_baseline.txt.

The baseline maps "check-name count" pairs. A run fails if any check
produces MORE warnings than its baselined count (new debt), and reports
(but does not fail on) checks that now produce fewer -- run with
--update-baseline to lower the bar and commit the diff. Checks absent
from the baseline must be clean. The ratchet only ever tightens.

Needs a compile_commands.json (use the clang-tidy CMake preset:
`cmake --preset clang-tidy`). Exits 3 when clang-tidy itself is missing
so callers (scripts/check.sh) can distinguish "toolchain absent" from
"findings".

Usage:
    python3 scripts/clang_tidy_check.py [--build-dir build-clang-tidy]
                                        [--update-baseline] [--jobs N]
"""

import argparse
import collections
import pathlib
import re
import shutil
import subprocess
import sys

WARNING = re.compile(r"warning:.*\[([A-Za-z0-9.,-]+)\]\s*$")

EXIT_TOOLCHAIN_MISSING = 3


def gather_sources(repo):
    out = []
    for root in ("src", "include"):
        for path in sorted((repo / root).rglob("*.cpp")):
            out.append(path)
    return out


def run_tidy(repo, build_dir, jobs):
    sources = gather_sources(repo)
    if not sources:
        print("clang_tidy_check: no sources found", file=sys.stderr)
        return None
    runner = shutil.which("run-clang-tidy")
    counts = collections.Counter()
    if runner:
        cmd = [runner, "-quiet", "-p", str(build_dir), "-j", str(jobs)]
        cmd += [str(s) for s in sources]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        text = proc.stdout + proc.stderr
    else:
        chunks = []
        for s in sources:
            proc = subprocess.run(
                ["clang-tidy", "-quiet", "-p", str(build_dir), str(s)],
                capture_output=True, text=True)
            chunks.append(proc.stdout + proc.stderr)
        text = "\n".join(chunks)
    for line in text.splitlines():
        m = WARNING.search(line)
        if m:
            for check in m.group(1).split(","):
                counts[check] += 1
    return counts


def load_baseline(path):
    counts = {}
    if not path.exists():
        return counts
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, count = line.rpartition(" ")
        counts[name] = int(count)
    return counts


def write_baseline(path, counts):
    lines = [
        "# clang-tidy warning-count baseline (per check), ratcheted by",
        "# scripts/clang_tidy_check.py: a run may not exceed any count",
        "# here, and checks not listed must be clean. Regenerate with",
        "#   python3 scripts/clang_tidy_check.py --update-baseline",
        "# and commit the diff (counts may only go down in review).",
    ]
    for name in sorted(counts):
        if counts[name] > 0:
            lines.append(f"{name} {counts[name]}")
    path.write_text("\n".join(lines) + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=pathlib.Path(__file__).parent.parent,
                        type=pathlib.Path)
    parser.add_argument("--build-dir", default=None, type=pathlib.Path,
                        help="build tree holding compile_commands.json "
                             "(default: <repo>/build-clang-tidy)")
    parser.add_argument("--jobs", default=2, type=int)
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args()
    repo = args.repo.resolve()
    build_dir = args.build_dir or repo / "build-clang-tidy"
    baseline_path = repo / "tools" / "clang_tidy_baseline.txt"

    if shutil.which("clang-tidy") is None:
        print("clang_tidy_check: clang-tidy not found on PATH "
              "(install LLVM or skip the clang leg)", file=sys.stderr)
        return EXIT_TOOLCHAIN_MISSING
    if not (build_dir / "compile_commands.json").exists():
        print(f"clang_tidy_check: {build_dir}/compile_commands.json missing "
              "-- configure with `cmake --preset clang-tidy` first",
              file=sys.stderr)
        return EXIT_TOOLCHAIN_MISSING

    counts = run_tidy(repo, build_dir, args.jobs)
    if counts is None:
        return 1

    if args.update_baseline:
        write_baseline(baseline_path, counts)
        total = sum(counts.values())
        print(f"clang_tidy_check: baseline updated "
              f"({len(counts)} check(s), {total} warning(s))")
        return 0

    baseline = load_baseline(baseline_path)
    regressions = []
    improvements = []
    for check, n in sorted(counts.items()):
        allowed = baseline.get(check, 0)
        if n > allowed:
            regressions.append(f"{check}: {n} warning(s), baseline {allowed}")
        elif n < allowed:
            improvements.append(f"{check}: {n} < baseline {allowed}")
    for check, allowed in sorted(baseline.items()):
        if counts.get(check, 0) == 0 and allowed > 0:
            improvements.append(f"{check}: clean, baseline {allowed}")

    for r in regressions:
        print(f"clang_tidy_check: REGRESSION {r}", file=sys.stderr)
    for i in improvements:
        print(f"clang_tidy_check: improved    {i} "
              "(run --update-baseline to lock in)")
    if regressions:
        print(f"clang_tidy_check: {len(regressions)} check(s) above baseline",
              file=sys.stderr)
        return 1
    total = sum(counts.values())
    print(f"clang_tidy_check: ok ({total} warning(s), all within baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
